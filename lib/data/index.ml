(** Frozen indexes over a data graph.

    One [build] pass snapshots the graph into a {!Gql_graph.Csr} view
    and derives the access paths every engine's matcher wants instead of
    whole-graph scans:

    - [by_label]: label -> complex nodes (sorted), the entry point for
      typed pattern nodes;
    - [by_value]: normalised atom value -> atom nodes, for constant
      rectangles and value point-lookups (normalisation follows
      [Value.compare_values]: numeric when the value coerces, textual
      otherwise, so ["12"], [12] and [12.0] share a bucket);
    - per-node adjacency partitioned by edge name ([out_named] /
      [in_named]), by [Attribute] kind and name ([attr_named]), by
      [Child] kind ([children] / [parents]) and by [Ref]/[Rel] kind
      ([ref_succ] / [ref_pred]), so a labelled edge constraint
      enumerates only matching neighbours;
    - [edges_named]: name -> all (src, dst) pairs, for the WG-Log
      evaluator's globally negated edges.

    All candidate arrays are sorted ascending, which makes the indexed
    matcher enumerate embeddings in exactly the order of the scan-based
    one.  The index is a snapshot: [refresh] on a {!cache} rebuilds it
    only when the graph has grown (the data graph is append-only; node
    payloads are never mutated after construction). *)

type vkey =
  | Num of float
  | Str of string

(** The bucket key of a value, consistent with [Value.equal_values]. *)
let vkey (v : Value.t) : vkey =
  match Value.as_number v with
  | Some f -> Num f
  | None -> Str (Value.to_string v)

type t = {
  data : Graph.t;
  csr : (Graph.node_kind, Graph.edge) Gql_graph.Csr.t;
  version : int * int;  (** (n_nodes, n_edges) at build time *)
  by_label : (string, int array) Hashtbl.t;
  by_value : (vkey, int array) Hashtbl.t;
  all_complex : int array;
  all_atoms : int array;
  out_by_name : (int * string, int array) Hashtbl.t;
  in_by_name : (int * string, int array) Hashtbl.t;
  attr_out : (int * string, int array) Hashtbl.t;
  child_out : int array array;
  child_in : int array array;
  ref_out : int array array;
  ref_in : int array array;
  edges_by_name : (string, (int * int) array) Hashtbl.t;
}

let empty_arr : int array = [||]

let build (data : Graph.t) : t =
  let csr = Gql_graph.Csr.freeze data.Graph.g in
  let n = Gql_graph.Csr.n_nodes csr in
  let by_label_l : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let by_value_l : (vkey, int list ref) Hashtbl.t = Hashtbl.create 256 in
  let complex_l = ref [] and atoms_l = ref [] in
  let bucket tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := v :: !r
    | None -> Hashtbl.replace tbl key (ref [ v ])
  in
  for i = n - 1 downto 0 do
    match Gql_graph.Csr.payload csr i with
    | Graph.Complex l ->
      bucket by_label_l l i;
      complex_l := i :: !complex_l
    | Graph.Atom v ->
      bucket by_value_l (vkey v) i;
      atoms_l := i :: !atoms_l
  done;
  let out_name_l : (int * string, int list ref) Hashtbl.t = Hashtbl.create (4 * n) in
  let in_name_l : (int * string, int list ref) Hashtbl.t = Hashtbl.create (4 * n) in
  let attr_l : (int * string, int list ref) Hashtbl.t = Hashtbl.create n in
  let edges_name_l : (string, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  let child_out_l = Array.make n [] and child_in_l = Array.make n [] in
  let ref_out_l = Array.make n [] and ref_in_l = Array.make n [] in
  Gql_graph.Csr.iter_edges
    (fun ~src ~dst (e : Graph.edge) ->
      bucket out_name_l (src, e.Graph.name) dst;
      bucket in_name_l (dst, e.Graph.name) src;
      bucket edges_name_l e.Graph.name (src, dst);
      match e.Graph.kind with
      | Graph.Child ->
        child_out_l.(src) <- dst :: child_out_l.(src);
        child_in_l.(dst) <- src :: child_in_l.(dst)
      | Graph.Attribute -> bucket attr_l (src, e.Graph.name) dst
      | Graph.Ref | Graph.Rel ->
        ref_out_l.(src) <- dst :: ref_out_l.(src);
        ref_in_l.(dst) <- src :: ref_in_l.(dst))
    csr;
  let int_cmp (a : int) (b : int) = compare a b in
  let finish_int tbl src =
    Hashtbl.iter
      (fun key r ->
        let a = Array.of_list !r in
        if Array.length a > 1 then Array.sort int_cmp a;
        Hashtbl.replace tbl key a)
      src;
    tbl
  in
  let sorted_arr l =
    let a = Array.of_list l in
    if Array.length a > 1 then Array.sort int_cmp a;
    a
  in
  {
    data;
    csr;
    version = (Graph.n_nodes data, Graph.n_edges data);
    by_label = finish_int (Hashtbl.create (Hashtbl.length by_label_l)) by_label_l;
    by_value = finish_int (Hashtbl.create (Hashtbl.length by_value_l)) by_value_l;
    all_complex = Array.of_list !complex_l;
    all_atoms = Array.of_list !atoms_l;
    out_by_name = finish_int (Hashtbl.create (Hashtbl.length out_name_l)) out_name_l;
    in_by_name = finish_int (Hashtbl.create (Hashtbl.length in_name_l)) in_name_l;
    attr_out = finish_int (Hashtbl.create (Hashtbl.length attr_l)) attr_l;
    child_out = Array.map sorted_arr child_out_l;
    child_in = Array.map sorted_arr child_in_l;
    ref_out = Array.map sorted_arr ref_out_l;
    ref_in = Array.map sorted_arr ref_in_l;
    edges_by_name =
      (let out = Hashtbl.create (Hashtbl.length edges_name_l) in
       Hashtbl.iter
         (fun key r ->
           let a = Array.of_list !r in
           Array.sort compare a;
           Hashtbl.replace out key a)
         edges_name_l;
       out);
  }

(* --- lookups --------------------------------------------------------- *)

let csr t = t.csr
let graph t = t.data
let n_nodes t = fst t.version
let n_edges t = snd t.version

let find_arr tbl key = Option.value (Hashtbl.find_opt tbl key) ~default:empty_arr

(** Complex nodes carrying label [l], sorted. *)
let complex_with_label t l = find_arr t.by_label l

(** Complex nodes whose label satisfies [p] — one test per *distinct*
    label, not per node (this is how regex name tests scale). *)
let complex_matching t p : int list =
  Hashtbl.fold
    (fun l nodes acc -> if p l then List.rev_append (Array.to_list nodes) acc else acc)
    t.by_label []
  |> List.sort compare

(** Atom nodes equal (in the [Value.equal_values] sense) to [v]. *)
let atoms_equal t v = find_arr t.by_value (vkey v)

let all_complex t = t.all_complex
let all_atoms t = t.all_atoms
let labels t = Hashtbl.fold (fun l _ acc -> l :: acc) t.by_label [] |> List.sort compare

let out_named t n name = find_arr t.out_by_name (n, name)
let in_named t n name = find_arr t.in_by_name (n, name)
let attr_named t n name = find_arr t.attr_out (n, name)
let children t n = t.child_out.(n)
let parents t n = t.child_in.(n)
let ref_succ t n = t.ref_out.(n)
let ref_pred t n = t.ref_in.(n)
let edges_named t name : (int * int) array =
  Option.value (Hashtbl.find_opt t.edges_by_name name) ~default:[||]

(** O(1) total degree, for the matcher's fail-first scorer. *)
let degree t n = Gql_graph.Csr.degree t.csr n

let mem_arr (a : int array) x =
  (* adjacency slices are small; linear scan beats binary search setup *)
  let rec go i = i < Array.length a && (a.(i) = x || go (i + 1)) in
  go 0

(* --- Homo navigation builders ---------------------------------------- *)

let list_of a = Array.to_list a

(** Edges named [name], any kind — exactly WG-Log's label semantics, so
    [nav_links] is exact. *)
let nav_name t name : Gql_graph.Homo.nav =
  {
    nav_out = Some (fun n -> list_of (out_named t n name));
    nav_in = Some (fun n -> list_of (in_named t n name));
    nav_links = Some (fun src dst -> mem_arr (out_named t src name) dst);
  }

(** [Child]-kind edges, any name.  Exact for unpositioned containment. *)
let nav_child t : Gql_graph.Homo.nav =
  {
    nav_out = Some (fun n -> list_of (children t n));
    nav_in = Some (fun n -> list_of (parents t n));
    nav_links = Some (fun src dst -> mem_arr (children t src) dst);
  }

(** [Child]-kind edges used only for candidate enumeration (a superset):
    positioned containment re-checks the ordinal via the constraint. *)
let nav_child_superset t : Gql_graph.Homo.nav =
  {
    nav_out = Some (fun n -> list_of (children t n));
    nav_in = Some (fun n -> list_of (parents t n));
    nav_links = None;
  }

(** [Attribute]-kind edges named [name].  Exact on the forward direction
    and the link test; reverse lookups fall back to the scan. *)
let nav_attr t name : Gql_graph.Homo.nav =
  {
    nav_out = Some (fun n -> list_of (attr_named t n name));
    nav_in = None;
    nav_links = Some (fun src dst -> mem_arr (attr_named t src name) dst);
  }

(** [Ref]/[Rel]-kind edges, any name — exact. *)
let nav_ref t : Gql_graph.Homo.nav =
  {
    nav_out = Some (fun n -> list_of (ref_succ t n));
    nav_in = Some (fun n -> list_of (ref_pred t n));
    nav_links = Some (fun src dst -> mem_arr (ref_succ t src) dst);
  }

(** [Ref]/[Rel] edges named [name]: name-partitioned supersets for
    enumeration (the name table ignores kind), exact checks deferred. *)
let nav_ref_named t name : Gql_graph.Homo.nav =
  {
    nav_out = Some (fun n -> list_of (out_named t n name));
    nav_in = Some (fun n -> list_of (in_named t n name));
    nav_links = None;
  }

(** Regular-path navigation over the frozen view. *)
let nav_path t (rp : Graph.edge Gql_graph.Regpath.t) : Gql_graph.Homo.nav =
  {
    nav_out = Some (fun n -> Gql_graph.Regpath.reachable_frozen rp t.csr n);
    nav_in = None;
    nav_links = Some (fun src dst -> Gql_graph.Regpath.connects_frozen rp t.csr ~src ~dst);
  }

(** Assemble a provider from per-pattern-node candidates and per-edge
    navigation (both indexed by pattern position / [p_edges] order). *)
let provider ?(navs : Gql_graph.Homo.nav option array = [||]) t
    ~(candidates : int -> int list option) :
    (Graph.node_kind, Graph.edge) Gql_graph.Homo.provider =
  {
    Gql_graph.Homo.prov_candidates = candidates;
    prov_degree = Some (degree t);
    prov_nav = (fun i -> if i < Array.length navs then navs.(i) else None);
  }

(* --- cache ------------------------------------------------------------ *)

type cache = { mutable cached : t option }

let cache () = { cached = None }

(** The index for [data], rebuilt only if the graph has grown since the
    cached build (append-only graphs make size a sound version stamp). *)
let refresh (c : cache) (data : Graph.t) : t =
  match c.cached with
  | Some idx
    when idx.data == data
         && idx.version = (Graph.n_nodes data, Graph.n_edges data) ->
    idx
  | Some _ | None ->
    let idx = build data in
    c.cached <- Some idx;
    idx
