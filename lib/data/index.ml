(** Frozen indexes over a data graph.

    One [build] pass snapshots the graph into a {!Gql_graph.Csr} view,
    interns every node label and edge name into a snapshot-local
    {!Symtab}, and derives the access paths every engine's matcher wants
    instead of whole-graph scans:

    - [by_label]: label symbol -> complex nodes ({!Gql_graph.Iset.t}),
      the entry point for typed pattern nodes;
    - [by_value]: normalised atom value -> atom nodes, for constant
      rectangles and value point-lookups (normalisation follows
      [Value.compare_values]: numeric when the value coerces, textual
      otherwise, so ["12"], [12] and [12.0] share a bucket);
    - per-node adjacency partitioned by edge-name symbol ([out_named] /
      [in_named]), by [Attribute] kind and name ([attr_named]), by
      [Child] kind ([children] / [parents]) and by [Ref]/[Rel] kind
      ([ref_succ] / [ref_pred]), so a labelled edge constraint
      enumerates only matching neighbours;
    - [edges_named]: name symbol -> all (src, dst) pairs, for the WG-Log
      evaluator's globally negated edges;
    - a per-node interned label plane on the CSR view
      ([Csr.set_node_syms]), so "is this node labelled X?" is one
      integer compare against a symbol resolved once per query.

    All posting sets are sorted ascending and duplicate-free, which
    makes the indexed matcher enumerate embeddings in exactly the order
    of the scan-based one.  Per-node name-partitioned adjacency is keyed
    by the single integer [node * stride + name_sym], so a lookup hashes
    one immediate int and allocates nothing.

    Symbols are snapshot-local: ids from one build must never be
    compared with ids (or used against postings) of another.  The index
    is a snapshot: [refresh] on a {!cache} rebuilds it only when the
    graph has grown (the data graph is append-only; node payloads are
    never mutated after construction). *)

module Iset = Gql_graph.Iset

type vkey =
  | Num of float
  | Str of string

(** The bucket key of a value, consistent with [Value.equal_values]. *)
let vkey (v : Value.t) : vkey =
  match Value.as_number v with
  | Some f -> Num f
  | None -> Str (Value.to_string v)

(* Posting maps come in two representations behind one accessor set:
   indexes built in memory keep the hashtables the build pass filled
   (hot path unchanged); indexes loaded from a snapshot file keep the
   file's flat planes — sorted key array, offset array, one shared pool
   of postings — and slice sets out on demand, so loading costs three
   blits per map instead of millions of hashtable inserts. *)
type postings =
  | P_tbl of (int, Iset.t) Hashtbl.t
  | P_flat of { keys : int array;  (** sorted ascending *)
                off : int array;  (** length [|keys| + 1] *)
                pool : int array }

(* Rank of [key] in the sorted key array, or -1 when absent. *)
let p_rank (keys : int array) key =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if keys.(mid) < key then lo := mid + 1 else hi := mid
  done;
  if !lo < Array.length keys && keys.(!lo) = key then !lo else -1

let p_find p key : Iset.t =
  match p with
  | P_tbl h -> Option.value (Hashtbl.find_opt h key) ~default:Iset.empty
  | P_flat f ->
    let i = p_rank f.keys key in
    if i < 0 then Iset.empty
    else
      Iset.unsafe_of_sorted_array
        (Array.sub f.pool f.off.(i) (f.off.(i + 1) - f.off.(i)))

(* Membership without materialising the posting set — flat maps answer
   straight off the pool, so link tests stay allocation-free. *)
let p_mem p key v : bool =
  match p with
  | P_tbl h -> (
    match Hashtbl.find_opt h key with
    | None -> false
    | Some s -> Iset.mem s v)
  | P_flat f ->
    let i = p_rank f.keys key in
    i >= 0 && Iset.mem_range f.pool ~lo:f.off.(i) ~hi:f.off.(i + 1) v

let p_fold (f : int -> Iset.t -> 'a -> 'a) p acc : 'a =
  match p with
  | P_tbl h -> Hashtbl.fold f h acc
  | P_flat fl ->
    let acc = ref acc in
    for i = 0 to Array.length fl.keys - 1 do
      acc :=
        f fl.keys.(i)
          (Iset.unsafe_of_sorted_array
             (Array.sub fl.pool fl.off.(i) (fl.off.(i + 1) - fl.off.(i))))
          !acc
    done;
    !acc

(* Dense per-node set planes (children/parents/refs), same two shapes:
   an array of sets when built, offsets + pool when loaded. *)
type dense =
  | D_arr of Iset.t array
  | D_flat of { off : int array; pool : int array }

let d_get d n : Iset.t =
  match d with
  | D_arr a -> a.(n)
  | D_flat f ->
    Iset.unsafe_of_sorted_array
      (Array.sub f.pool f.off.(n) (f.off.(n + 1) - f.off.(n)))

let d_mem d n v : bool =
  match d with
  | D_arr a -> Iset.mem a.(n) v
  | D_flat f -> Iset.mem_range f.pool ~lo:f.off.(n) ~hi:f.off.(n + 1) v

(* Cold derived tables a loaded snapshot materialises on first demand
   (under [path_lock]); built indexes start in the ready state. *)
type vtbl =
  | V_ready of (vkey, Iset.t) Hashtbl.t
  | V_lazy of (unit -> (vkey, Iset.t) Hashtbl.t)

type etbl =
  | E_ready of (int, (int * int) array) Hashtbl.t
  | E_lazy of {
      counts : (int * int) array;
          (** (name sym, edge count) sorted by sym — answers the
              planner's cardinality probes without materialising *)
      mk : unit -> (int, (int * int) array) Hashtbl.t;
    }

type t = {
  data : Graph.t;
  csr : (Graph.node_kind, Graph.edge) Gql_graph.Csr.t;
  version : int * int;  (** (n_nodes, n_edges) at build time *)
  symtab : Symtab.t;
  stride : int;  (** symtab length at build end; adjacency key stride *)
  by_label : postings;  (** label sym -> complex nodes *)
  mutable by_value : vtbl;
  all_complex : Iset.t;
  all_atoms : Iset.t;
  out_by_name : postings;  (** node * stride + name sym *)
  in_by_name : postings;
  attr_out : postings;
  child_out : dense;
  child_in : dense;
  ref_out : dense;
  ref_in : dense;
  mutable edges_by_name : etbl;  (** name sym *)
  (* Regular-path engine state, all lazy and mutex-guarded (the serve
     pool shares one snapshot across worker domains): per-lane edge-sym
     planes aligned with the CSR out/in slices, per-automaton
     specialisations, and the path-result memo.  All of it dies with
     the snapshot, so the existing (n_nodes, n_edges) version scheme
     invalidates it for free. *)
  path_lock : Mutex.t;
  planes : (int, int array * int array) Hashtbl.t;  (** hint -> out, in *)
  path_specs : (int, Gql_graph.Regpath.spec) Hashtbl.t;  (** automaton uid *)
  path_memo : (int * int * int, Iset.t) Hashtbl.t;  (** uid, dir, node *)
}

let build (data : Graph.t) : t =
  let csr = Gql_graph.Csr.freeze (Graph.digraph data) in
  let n = Gql_graph.Csr.n_nodes csr in
  let symtab = Symtab.create () in
  let by_label_l : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let by_value_l : (vkey, int list ref) Hashtbl.t = Hashtbl.create 256 in
  let complex_l = ref [] and atoms_l = ref [] in
  let node_syms = Array.make n (-1) in
  let bucket tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := v :: !r
    | None -> Hashtbl.replace tbl key (ref [ v ])
  in
  for i = n - 1 downto 0 do
    match Gql_graph.Csr.payload csr i with
    | Graph.Complex l ->
      let sym = Symtab.intern symtab l in
      node_syms.(i) <- sym;
      bucket by_label_l sym i;
      complex_l := i :: !complex_l
    | Graph.Atom v ->
      bucket by_value_l (vkey v) i;
      atoms_l := i :: !atoms_l
  done;
  Gql_graph.Csr.set_node_syms csr node_syms;
  (* Adjacency accumulation keyed by (node, name sym) tuples; re-keyed
     below to [node * stride + sym] once the symbol table is final. *)
  let out_name_l : (int * int, int list ref) Hashtbl.t = Hashtbl.create (4 * n) in
  let in_name_l : (int * int, int list ref) Hashtbl.t = Hashtbl.create (4 * n) in
  let attr_l : (int * int, int list ref) Hashtbl.t = Hashtbl.create n in
  let edges_name_l : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  let child_out_l = Array.make n [] and child_in_l = Array.make n [] in
  let ref_out_l = Array.make n [] and ref_in_l = Array.make n [] in
  Gql_graph.Csr.iter_edges
    (fun ~src ~dst (e : Graph.edge) ->
      let nsym = Symtab.intern symtab e.Graph.name in
      bucket out_name_l (src, nsym) dst;
      bucket in_name_l (dst, nsym) src;
      bucket edges_name_l nsym (src, dst);
      match e.Graph.kind with
      | Graph.Child ->
        child_out_l.(src) <- dst :: child_out_l.(src);
        child_in_l.(dst) <- src :: child_in_l.(dst)
      | Graph.Attribute -> bucket attr_l (src, nsym) dst
      | Graph.Ref | Graph.Rel ->
        ref_out_l.(src) <- dst :: ref_out_l.(src);
        ref_in_l.(dst) <- src :: ref_in_l.(dst))
    csr;
  let stride = max 1 (Symtab.length symtab) in
  let finish_syms tbl src =
    (* node-label buckets: one entry per node, no duplicates possible *)
    Hashtbl.iter
      (fun key r -> Hashtbl.replace tbl key (Iset.of_array (Array.of_list !r)))
      src;
    tbl
  in
  let finish_adj src =
    (* parallel edges can repeat a neighbour; [Iset.of_array] dedups *)
    let out = Hashtbl.create (Hashtbl.length src) in
    Hashtbl.iter
      (fun (node, nsym) r ->
        Hashtbl.replace out ((node * stride) + nsym)
          (Iset.of_array (Array.of_list !r)))
      src;
    out
  in
  let adj_sets l = Array.map (fun lst -> Iset.of_array (Array.of_list lst)) l in
  {
    data;
    csr;
    version = (Graph.n_nodes data, Graph.n_edges data);
    symtab;
    stride;
    by_label =
      P_tbl (finish_syms (Hashtbl.create (Hashtbl.length by_label_l)) by_label_l);
    by_value =
      V_ready
        (finish_syms (Hashtbl.create (Hashtbl.length by_value_l)) by_value_l);
    all_complex = Iset.unsafe_of_sorted_array (Array.of_list !complex_l);
    all_atoms = Iset.unsafe_of_sorted_array (Array.of_list !atoms_l);
    out_by_name = P_tbl (finish_adj out_name_l);
    in_by_name = P_tbl (finish_adj in_name_l);
    attr_out = P_tbl (finish_adj attr_l);
    child_out = D_arr (adj_sets child_out_l);
    child_in = D_arr (adj_sets child_in_l);
    ref_out = D_arr (adj_sets ref_out_l);
    ref_in = D_arr (adj_sets ref_in_l);
    edges_by_name =
      E_ready
        (let out = Hashtbl.create (Hashtbl.length edges_name_l) in
         Hashtbl.iter
           (fun key r ->
             let a = Array.of_list !r in
             Array.sort compare a;
             Hashtbl.replace out key a)
           edges_name_l;
         out);
    path_lock = Mutex.create ();
    planes = Hashtbl.create 4;
    path_specs = Hashtbl.create 8;
    path_memo = Hashtbl.create 64;
  }

(* --- lookups --------------------------------------------------------- *)

let csr t = t.csr
let graph t = t.data
let n_nodes t = fst t.version
let n_edges t = snd t.version

(** The snapshot's symbol table (labels and edge names). *)
let symtab t = t.symtab

(** Interned label symbol of node [n]; [-1] for atoms.  One integer
    compare against [label_sym] answers a typed-node test. *)
let node_sym t n = Gql_graph.Csr.node_sym t.csr n

(** The symbol of label/name [s] in this snapshot, or [-1] when nothing
    in the snapshot carries it (so no node/edge can match). *)
let label_sym t s = match Symtab.find t.symtab s with Some i -> i | None -> -1

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

(* Force a cold derived table exactly once; the fast path is one
   immutable-looking field read, the slow path runs under [path_lock]
   so concurrent worker domains materialise a loaded snapshot once. *)
let by_value_tbl t : (vkey, Iset.t) Hashtbl.t =
  match t.by_value with
  | V_ready h -> h
  | V_lazy _ ->
    with_lock t.path_lock (fun () ->
        match t.by_value with
        | V_ready h -> h
        | V_lazy mk ->
          let h = mk () in
          t.by_value <- V_ready h;
          h)

let edges_tbl t : (int, (int * int) array) Hashtbl.t =
  match t.edges_by_name with
  | E_ready h -> h
  | E_lazy _ ->
    with_lock t.path_lock (fun () ->
        match t.edges_by_name with
        | E_ready h -> h
        | E_lazy { mk; _ } ->
          let h = mk () in
          t.edges_by_name <- E_ready h;
          h)

(** Complex nodes carrying label symbol [sym], sorted. *)
let complex_with_sym t sym : Iset.t =
  if sym < 0 then Iset.empty else p_find t.by_label sym

(** Complex nodes carrying label [l], sorted. *)
let complex_with_label t l : Iset.t = complex_with_sym t (label_sym t l)

(** Complex nodes whose label satisfies [p] — one test per *distinct*
    label, not per node (this is how regex name tests scale). *)
let complex_matching t p : Iset.t =
  let parts =
    p_fold
      (fun sym nodes acc ->
        if p (Symtab.name t.symtab sym) then nodes :: acc else acc)
      t.by_label []
  in
  match parts with
  | [] -> Iset.empty
  | [ s ] -> s
  | parts -> List.fold_left Iset.union Iset.empty parts

(** Atom nodes equal (in the [Value.equal_values] sense) to [v]. *)
let atoms_equal t v : Iset.t =
  Option.value (Hashtbl.find_opt (by_value_tbl t) (vkey v)) ~default:Iset.empty

let all_complex t = t.all_complex
let all_atoms t = t.all_atoms

let labels t =
  p_fold (fun sym _ acc -> Symtab.name t.symtab sym :: acc) t.by_label []
  |> List.sort compare

(* name-partitioned adjacency, keyed by one immediate int *)
let adj_named tbl t n sym : Iset.t =
  if sym < 0 then Iset.empty else p_find tbl ((n * t.stride) + sym)

let adj_mem tbl t n sym dst : bool =
  sym >= 0 && p_mem tbl ((n * t.stride) + sym) dst

let out_named_sym t n sym = adj_named t.out_by_name t n sym
let in_named_sym t n sym = adj_named t.in_by_name t n sym
let attr_named_sym t n sym = adj_named t.attr_out t n sym
let out_named t n name = out_named_sym t n (label_sym t name)
let in_named t n name = in_named_sym t n (label_sym t name)
let attr_named t n name = attr_named_sym t n (label_sym t name)
let children t n = d_get t.child_out n
let parents t n = d_get t.child_in n
let ref_succ t n = d_get t.ref_out n
let ref_pred t n = d_get t.ref_in n

let edges_named t name : (int * int) array =
  match Symtab.find t.symtab name with
  | None -> [||]
  | Some sym -> Option.value (Hashtbl.find_opt (edges_tbl t) sym) ~default:[||]

(** O(1) total degree, for the matcher's fail-first scorer. *)
let degree t n = Gql_graph.Csr.degree t.csr n

(* --- statistics ------------------------------------------------------- *)

(** Snapshot statistics for the cost-based planner ({!Gql_algebra} via
    the provider, and EXPLAIN's summary line): sizes, the CSR degree
    summary, and per-edge-name edge counts. *)
type stats = {
  st_nodes : int;
  st_edges : int;
  st_avg_out_degree : float;  (** edges / nodes, from the CSR planes *)
  st_max_out_degree : int;
  st_name_counts : (string * int) list;
      (** edge name -> total edge count, sorted by name *)
}

(** Total number of edges named [name] in the snapshot — a per-symbol
    fan-out numerator (divide by a source cardinality for a mean). *)
let name_edge_count t name : int =
  match Symtab.find t.symtab name with
  | None -> 0
  | Some sym -> (
    match t.edges_by_name with
    | E_ready h -> (
      match Hashtbl.find_opt h sym with
      | None -> 0
      | Some a -> Array.length a)
    | E_lazy { counts; _ } ->
      (* planner probes must not force pair materialisation *)
      let lo = ref 0 and hi = ref (Array.length counts) in
      while !lo < !hi do
        let mid = !lo + ((!hi - !lo) / 2) in
        if fst counts.(mid) < sym then lo := mid + 1 else hi := mid
      done;
      if !lo < Array.length counts && fst counts.(!lo) = sym then
        snd counts.(!lo)
      else 0)

let stats t : stats =
  {
    st_nodes = n_nodes t;
    st_edges = n_edges t;
    st_avg_out_degree = Gql_graph.Csr.avg_out_degree t.csr;
    st_max_out_degree = Gql_graph.Csr.max_out_degree t.csr;
    st_name_counts =
      (match t.edges_by_name with
      | E_ready h ->
        Hashtbl.fold
          (fun sym pairs acc ->
            (Symtab.name t.symtab sym, Array.length pairs) :: acc)
          h []
      | E_lazy { counts; _ } ->
        Array.to_list counts
        |> List.map (fun (sym, c) -> (Symtab.name t.symtab sym, c)))
      |> List.sort compare;
  }

(* --- Homo navigation builders ---------------------------------------- *)

(* Navs resolve their name symbol once at construction, not per hop. *)

(** Edges named [name], any kind — exactly WG-Log's label semantics, so
    the nav is exact. *)
let nav_name t name : Gql_graph.Homo.nav =
  let sym = label_sym t name in
  {
    nav_out = Some (fun n -> out_named_sym t n sym);
    nav_in = Some (fun n -> in_named_sym t n sym);
    nav_links = Some (fun src dst -> adj_mem t.out_by_name t src sym dst);
    nav_exact = true;
  }

(** [Child]-kind edges, any name.  Exact for unpositioned containment. *)
let nav_child t : Gql_graph.Homo.nav =
  {
    nav_out = Some (fun n -> children t n);
    nav_in = Some (fun n -> parents t n);
    nav_links = Some (fun src dst -> d_mem t.child_out src dst);
    nav_exact = true;
  }

(** [Child]-kind edges used only for candidate enumeration (a superset):
    positioned containment re-checks the ordinal via the constraint. *)
let nav_child_superset t : Gql_graph.Homo.nav =
  {
    nav_out = Some (fun n -> children t n);
    nav_in = Some (fun n -> parents t n);
    nav_links = None;
    nav_exact = false;
  }

(** [Attribute]-kind edges named [name].  Exact on the forward direction
    and the link test; reverse lookups fall back to the scan. *)
let nav_attr t name : Gql_graph.Homo.nav =
  let sym = label_sym t name in
  {
    nav_out = Some (fun n -> attr_named_sym t n sym);
    nav_in = None;
    nav_links = Some (fun src dst -> adj_mem t.attr_out t src sym dst);
    nav_exact = true;
  }

(** [Ref]/[Rel]-kind edges, any name — exact. *)
let nav_ref t : Gql_graph.Homo.nav =
  {
    nav_out = Some (fun n -> ref_succ t n);
    nav_in = Some (fun n -> ref_pred t n);
    nav_links = Some (fun src dst -> d_mem t.ref_out src dst);
    nav_exact = true;
  }

(** [Ref]/[Rel] edges named [name]: name-partitioned supersets for
    enumeration (the name table ignores kind), exact checks deferred. *)
let nav_ref_named t name : Gql_graph.Homo.nav =
  let sym = label_sym t name in
  {
    nav_out = Some (fun n -> out_named_sym t n sym);
    nav_in = Some (fun n -> in_named_sym t n sym);
    nav_links = None;
    nav_exact = false;
  }

(* --- regular-path navigation ------------------------------------------ *)

module Rp = Gql_graph.Regpath

(** Edge-plane lane hints for {!Rp.compile_classified}: which edges a
    snapshot lane admits before the symbol test even runs.  [plane_name]
    admits every edge (MATCH path semantics), [plane_rel] excludes
    [Attribute] edges (WG-Log arcs), [plane_child] admits only [Child]
    edges (XML-GL deep containment).  Hint [0] means no plane: the
    engine tests edges with the leaf predicates. *)
let plane_name = 1

let plane_rel = 2
let plane_child = 3

(* Per-edge interned name, or [-1] where the lane rejects the edge —
   index-aligned with the CSR out/in label slices, so a plane-mode
   search tests each hop with one integer compare. *)
let plane t hint : int array * int array =
  match with_lock t.path_lock (fun () -> Hashtbl.find_opt t.planes hint) with
  | Some p -> p
  | None ->
    let enc (e : Graph.edge) =
      let admitted =
        if hint = plane_rel then e.Graph.kind <> Graph.Attribute
        else if hint = plane_child then e.Graph.kind = Graph.Child
        else true
      in
      if not admitted then -1
      else
        (* every frozen edge name was interned during [build] *)
        match Symtab.find t.symtab e.Graph.name with Some s -> s | None -> -1
    in
    let p =
      ( Gql_graph.Csr.map_out_labels enc t.csr,
        Gql_graph.Csr.map_in_labels enc t.csr )
    in
    with_lock t.path_lock (fun () ->
        match Hashtbl.find_opt t.planes hint with
        | Some p -> p
        | None ->
          Hashtbl.replace t.planes hint p;
          p)

(* Automaton leaves resolved against this snapshot's interner, cached
   per automaton uid (names interned after the freeze resolve to the
   never-matching sentinel — they cannot name any frozen edge). *)
let path_spec t rp : Rp.spec =
  let uid = Rp.uid rp in
  match with_lock t.path_lock (fun () -> Hashtbl.find_opt t.path_specs uid) with
  | Some s -> s
  | None ->
    let s = Rp.specialise rp ~intern:(fun name -> label_sym t name) in
    with_lock t.path_lock (fun () ->
        if not (Hashtbl.mem t.path_specs uid) then
          Hashtbl.replace t.path_specs uid s);
    s

(* The memo can only trade memory for time — disabling it (debugging,
   memory ceilings) must not change any result. *)
let path_memo_enabled =
  match Sys.getenv_opt "GQL_PATH_MEMO" with Some "0" -> false | _ -> true

let path_run t rp ~(rev : bool) n : Iset.t =
  let hint = Rp.plane_hint rp in
  if hint = 0 then
    if rev then Rp.reachable_frozen_rev_set rp t.csr n
    else Rp.reachable_frozen_set rp t.csr n
  else
    let spec = path_spec t rp in
    let out_p, in_p = plane t hint in
    if rev then Rp.reachable_rev_plane rp spec t.csr ~plane:in_p n
    else Rp.reachable_plane rp spec t.csr ~plane:out_p n

(* Compute outside the lock: a racing duplicate computation is benign
   (both sides produce the same set) and path searches are far too slow
   to serialise across worker domains. *)
let path_cached t rp ~(rev : bool) n : Iset.t =
  if not path_memo_enabled then path_run t rp ~rev n
  else begin
    let key = (Rp.uid rp, (if rev then 1 else 0), n) in
    match with_lock t.path_lock (fun () -> Hashtbl.find_opt t.path_memo key) with
    | Some s ->
      Rp.note_memo_hit ();
      s
    | None ->
      Rp.note_memo_miss ();
      let s = path_run t rp ~rev n in
      with_lock t.path_lock (fun () ->
          if not (Hashtbl.mem t.path_memo key) then
            Hashtbl.replace t.path_memo key s);
      s
  end

let path_connects t rp ~src ~dst : bool =
  if path_memo_enabled then Iset.mem (path_cached t rp ~rev:false src) dst
  else
    (* no memo to reuse or fill: take the early-exit search *)
    let hint = Rp.plane_hint rp in
    if hint = 0 then Rp.connects_frozen rp t.csr ~src ~dst
    else
      let spec = path_spec t rp in
      let out_p, _ = plane t hint in
      Rp.connects_plane rp spec t.csr ~plane:out_p ~src ~dst

(** Per-source reachable sets resolved in one scratch sweep, filling the
    memo as a side effect.  Sources already memoised are served from the
    memo; the rest run on the snapshot's plane. *)
let path_reachable_batch t rp (srcs : int array) : Iset.t array =
  Array.map (fun src -> path_cached t rp ~rev:false src) srcs

(** Regular-path navigation over the frozen view: specialised automaton
    on the snapshot's symbol plane, memoised per (automaton, direction,
    node), with backward navigation answered by the reverse automaton
    instead of a whole-graph scan. *)
let nav_path t (rp : Graph.edge Rp.t) : Gql_graph.Homo.nav =
  {
    nav_out = Some (fun n -> path_cached t rp ~rev:false n);
    nav_in = Some (fun n -> path_cached t rp ~rev:true n);
    nav_links = Some (fun src dst -> path_connects t rp ~src ~dst);
    nav_exact = true;
  }

(** Assemble a provider from per-pattern-node candidate sets and
    per-edge navigation (both indexed by pattern position / [p_edges]
    order). *)
let provider ?(navs : Gql_graph.Homo.nav option array = [||]) t
    ~(candidates : int -> Iset.t option) :
    (Graph.node_kind, Graph.edge) Gql_graph.Homo.provider =
  {
    Gql_graph.Homo.prov_candidates = candidates;
    prov_degree = Some (degree t);
    prov_nav = (fun i -> if i < Array.length navs then navs.(i) else None);
  }

(* --- cache ------------------------------------------------------------ *)

type cache = { mutable cached : t option }

let cache () = { cached = None }

(** The index for [data], rebuilt only if the graph has grown since the
    cached build (append-only graphs make size a sound version stamp). *)
let refresh (c : cache) (data : Graph.t) : t =
  match c.cached with
  | Some idx
    when idx.data == data
         && idx.version = (Graph.n_nodes data, Graph.n_edges data) ->
    idx
  | Some _ | None ->
    let idx = build data in
    c.cached <- Some idx;
    idx
