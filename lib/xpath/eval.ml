(** XPath evaluator over the flattened {!Index}.

    Values follow XPath 1.0: node-sets (sorted in document order —
    which coincides with index order), numbers, strings, booleans, with
    the standard coercions.  Position/size context is threaded for
    predicate evaluation. *)

type value =
  | Nodeset of int list  (** sorted, duplicate-free *)
  | Num of float
  | Str of string
  | Bool of bool

type context = { idx : Index.t; node : int; position : int; size : int }

exception Eval_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

(* --- coercions ------------------------------------------------------ *)

let string_of_value ctx = function
  | Str s -> s
  | Num f ->
    if Float.is_nan f then "NaN"
    else if Float.is_integer f && Float.abs f < 1e15 then
      string_of_int (int_of_float f)
    else string_of_float f
  | Bool b -> string_of_bool b
  | Nodeset [] -> ""
  | Nodeset (n :: _) -> Index.string_value ctx.idx n

let number_of_value ctx v =
  match v with
  | Num f -> f
  | Str s -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> f
    | None -> Float.nan)
  | Bool b -> if b then 1.0 else 0.0
  | Nodeset _ -> (
    match float_of_string_opt (String.trim (string_of_value ctx v)) with
    | Some f -> f
    | None -> Float.nan)

let bool_of_value = function
  | Bool b -> b
  | Num f -> f <> 0.0 && not (Float.is_nan f)
  | Str s -> s <> ""
  | Nodeset ns -> ns <> []

(* --- axes ----------------------------------------------------------- *)

let axis_nodes (idx : Index.t) (axis : Ast.axis) (n : int) : int list =
  let descendants_of n =
    let acc = ref [] in
    let rec go i =
      acc := i :: !acc;
      Array.iter go (Index.children idx i)
    in
    Array.iter go (Index.children idx n);
    List.rev !acc
  in
  match axis with
  | Ast.Self -> [ n ]
  | Ast.Child -> Array.to_list (Index.children idx n)
  | Ast.Descendant -> descendants_of n
  | Ast.Descendant_or_self -> n :: descendants_of n
  | Ast.Parent ->
    let p = Index.parent idx n in
    if p < 0 then [] else [ p ]
  | Ast.Ancestor ->
    let rec up acc i =
      let p = Index.parent idx i in
      if p < 0 then List.rev acc else up (p :: acc) p
    in
    up [] n
  | Ast.Ancestor_or_self ->
    let rec up acc i =
      let p = Index.parent idx i in
      if p < 0 then List.rev acc else up (p :: acc) p
    in
    n :: up [] n
  | Ast.Attribute -> Array.to_list (Index.attrs idx n)
  | Ast.Following_sibling ->
    let p = Index.parent idx n in
    if p < 0 then []
    else
      Array.to_list (Index.children idx p)
      |> List.filter (fun s -> s > n)
  | Ast.Preceding_sibling ->
    let p = Index.parent idx n in
    if p < 0 then []
    else
      Array.to_list (Index.children idx p)
      |> List.filter (fun s -> s < n)
  | Ast.Following ->
    (* document order after n, excluding its own descendants and any
       attribute nodes (per the XPath data model) *)
    let in_subtree = Hashtbl.create 16 in
    let rec mark i =
      Hashtbl.replace in_subtree i ();
      Array.iter mark (Index.children idx i)
    in
    mark n;
    let out = ref [] in
    for m = Index.n_nodes idx - 1 downto n + 1 do
      match Index.data idx m with
      | Index.Attr _ -> ()
      | _ -> if not (Hashtbl.mem in_subtree m) then out := m :: !out
    done;
    !out
  | Ast.Preceding ->
    (* document order before n, excluding ancestors and attributes *)
    let ancestors = Hashtbl.create 8 in
    let rec up i =
      let p = Index.parent idx i in
      if p >= 0 then begin
        Hashtbl.replace ancestors p ();
        up p
      end
    in
    up n;
    let out = ref [] in
    for m = n - 1 downto 0 do
      match Index.data idx m with
      | Index.Attr _ -> ()
      | _ -> if not (Hashtbl.mem ancestors m) then out := m :: !out
    done;
    List.rev !out

let test_matches (idx : Index.t) (axis : Ast.axis) (test : Ast.node_test) n =
  match test, Index.data idx n with
  | Ast.Node_test, _ -> true
  | Ast.Text_test, Index.Txt _ -> true
  | Ast.Text_test, _ -> false
  | Ast.Comment_test, Index.Com _ -> true
  | Ast.Comment_test, _ -> false
  | Ast.Wildcard, Index.Elem _ -> true
  | Ast.Wildcard, Index.Attr _ -> axis = Ast.Attribute
  | Ast.Wildcard, _ -> false
  | Ast.Name nm, Index.Elem { name; _ } -> nm = name
  | Ast.Name nm, Index.Attr { name; _ } -> axis = Ast.Attribute && nm = name
  | Ast.Name _, _ -> false

(* --- evaluation ------------------------------------------------------ *)

let sort_uniq ns = List.sort_uniq compare ns

let rec eval (ctx : context) (e : Ast.expr) : value =
  match e with
  | Ast.Literal s -> Str s
  | Ast.Number f -> Num f
  | Ast.Neg e -> Num (-.number_of_value ctx (eval ctx e))
  | Ast.Path p -> Nodeset (eval_path ctx p)
  | Ast.Call (f, args) -> eval_call ctx f args
  | Ast.Binop (op, a, b) -> (
    match op with
    | Ast.Or -> Bool (bool_of_value (eval ctx a) || bool_of_value (eval ctx b))
    | Ast.And -> Bool (bool_of_value (eval ctx a) && bool_of_value (eval ctx b))
    | Ast.Union -> (
      match eval ctx a, eval ctx b with
      | Nodeset x, Nodeset y -> Nodeset (sort_uniq (x @ y))
      | _ -> err "union requires node-sets")
    | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      Bool (eval_comparison ctx op (eval ctx a) (eval ctx b))
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
      let x = number_of_value ctx (eval ctx a)
      and y = number_of_value ctx (eval ctx b) in
      Num
        (match op with
        | Ast.Add -> x +. y
        | Ast.Sub -> x -. y
        | Ast.Mul -> x *. y
        | Ast.Div -> x /. y
        | Ast.Mod -> Float.rem x y
        | _ -> err "non-arithmetic operator in arithmetic position"))

and eval_comparison ctx op a b =
  (* XPath comparison: node-sets compare existentially. *)
  let cmp_atom op x y =
    match op with
    | Ast.Eq -> x = y
    | Ast.Neq -> x <> y
    | Ast.Lt -> x < y
    | Ast.Le -> x <= y
    | Ast.Gt -> x > y
    | Ast.Ge -> x >= y
    | _ -> err "non-comparison operator in comparison position"
  in
  let num_cmp x y = cmp_atom op (compare x y) (compare 0. 0.) in
  ignore num_cmp;
  match a, b with
  | Nodeset xs, Nodeset ys ->
    List.exists
      (fun x ->
        let sx = Index.string_value ctx.idx x in
        List.exists
          (fun y -> cmp_atom op sx (Index.string_value ctx.idx y))
          ys)
      xs
  | Nodeset xs, other | other, Nodeset xs ->
    let flip =
      match a with Nodeset _ -> false | _ -> true
    in
    List.exists
      (fun x ->
        let sv = Index.string_value ctx.idx x in
        match other, op with
        | _, (Ast.Eq | Ast.Neq) ->
          let o = string_of_value ctx other in
          (* Numeric comparison when the other side is a number. *)
          (match other with
          | Num f ->
            let xv = float_of_string_opt (String.trim sv) in
            (match xv, op with
            | Some xf, Ast.Eq -> xf = f
            | Some xf, Ast.Neq -> xf <> f
            | None, Ast.Eq -> false
            | None, Ast.Neq -> true
            | _ -> err "equality dispatch reached a non-equality operator")
          | _ -> cmp_atom op sv o)
        | _, (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) ->
          let xf =
            match float_of_string_opt (String.trim sv) with
            | Some f -> f
            | None -> Float.nan
          in
          let of' = number_of_value ctx other in
          let x, y = if flip then (of', xf) else (xf, of') in
          (match op with
          | Ast.Lt -> x < y
          | Ast.Le -> x <= y
          | Ast.Gt -> x > y
          | Ast.Ge -> x >= y
          | _ -> err "relational dispatch reached a non-relational operator")
        | _ -> false)
      xs
  | _ -> (
    match op with
    | Ast.Eq | Ast.Neq -> (
      (* booleans > numbers > strings in coercion priority *)
      match a, b with
      | Bool _, _ | _, Bool _ ->
        cmp_atom op (bool_of_value a) (bool_of_value b)
      | Num _, _ | _, Num _ ->
        cmp_atom op (number_of_value ctx a) (number_of_value ctx b)
      | _ -> cmp_atom op (string_of_value ctx a) (string_of_value ctx b))
    | _ -> cmp_atom op (number_of_value ctx a) (number_of_value ctx b))

and eval_path ctx (p : Ast.path) : int list =
  let start = if p.absolute then [ ctx.idx.Index.root ] else [ ctx.node ] in
  (* An absolute path starts at the (virtual) root: step selection from
     the document node means the root element is reachable via child. *)
  let start_set =
    if p.absolute then
      match p.steps with
      | { axis = Ast.Child | Ast.Descendant | Ast.Descendant_or_self; _ } :: _ ->
        [ -1 ]  (* virtual document node *)
      | _ -> start
    else start
  in
  List.fold_left (fun ns step -> eval_step ctx step ns) start_set p.steps

and eval_step ctx (s : Ast.step) (nodes : int list) : int list =
  let idx = ctx.idx in
  let selected =
    List.concat_map
      (fun n ->
        let base =
          if n = -1 then
            (* virtual document node *)
            match s.axis with
            | Ast.Child -> [ idx.Index.root ]
            | Ast.Descendant ->
              idx.Index.root :: axis_nodes idx Ast.Descendant idx.Index.root
            | Ast.Descendant_or_self ->
              (* the document node is its own descendant-or-self: keep the
                 virtual node so a following child:: step can still reach
                 the root element (e.g. //c with a root named c) *)
              (-1) :: idx.Index.root
              :: axis_nodes idx Ast.Descendant idx.Index.root
            | Ast.Self -> [ -1 ]
            | _ -> []
          else axis_nodes idx s.axis n
        in
        List.filter
          (fun m -> m = -1 || test_matches idx s.axis s.test m)
          base)
      nodes
  in
  let selected = sort_uniq selected in
  (* Apply predicates with position semantics. *)
  List.fold_left
    (fun ns pred ->
      let size = List.length ns in
      List.filteri
        (fun i n ->
          if n = -1 then true
          else
            let v =
              eval { ctx with node = n; position = i + 1; size } pred
            in
            match v with
            | Num f -> int_of_float f = i + 1
            | v -> bool_of_value v)
        ns)
    selected s.predicates

and eval_call ctx f args : value =
  let arg i =
    match List.nth_opt args i with
    | Some e -> eval ctx e
    | None -> err "function %s: missing argument %d" f i
  in
  let str i = string_of_value ctx (arg i) in
  let num i = number_of_value ctx (arg i) in
  let default_to_context () =
    if args = [] then Nodeset [ ctx.node ] else arg 0
  in
  match f, List.length args with
  | "position", 0 -> Num (float_of_int ctx.position)
  | "last", 0 -> Num (float_of_int ctx.size)
  | "count", 1 -> (
    match arg 0 with
    | Nodeset ns -> Num (float_of_int (List.length ns))
    | _ -> err "count() expects a node-set")
  | "not", 1 -> Bool (not (bool_of_value (arg 0)))
  | "true", 0 -> Bool true
  | "false", 0 -> Bool false
  | "boolean", 1 -> Bool (bool_of_value (arg 0))
  | "number", _ -> Num (number_of_value ctx (default_to_context ()))
  | "string", _ -> Str (string_of_value ctx (default_to_context ()))
  | "name", _ -> (
    match default_to_context () with
    | Nodeset (n :: _) -> Str (Option.value ~default:"" (Index.name ctx.idx n))
    | Nodeset [] -> Str ""
    | _ -> err "name() expects a node-set")
  | "concat", n when n >= 2 ->
    Str (String.concat "" (List.init n str))
  | "contains", 2 ->
    let hay = str 0 and needle = str 1 in
    let hl = String.length hay and nl = String.length needle in
    let rec find i =
      if i + nl > hl then false
      else if String.sub hay i nl = needle then true
      else find (i + 1)
    in
    Bool (nl = 0 || find 0)
  | "starts-with", 2 ->
    let s = str 0 and p = str 1 in
    Bool
      (String.length p <= String.length s
      && String.sub s 0 (String.length p) = p)
  | "string-length", _ ->
    Num (float_of_int (String.length (string_of_value ctx (default_to_context ()))))
  | "normalize-space", _ ->
    let s = string_of_value ctx (default_to_context ()) in
    let words =
      String.split_on_char ' ' (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s)
      |> List.filter (fun w -> w <> "")
    in
    Str (String.concat " " words)
  | "substring", 2 ->
    let s = str 0 in
    let start = int_of_float (num 1) - 1 in
    let start = max 0 start in
    if start >= String.length s then Str ""
    else Str (String.sub s start (String.length s - start))
  | "substring", 3 ->
    let s = str 0 in
    let start = int_of_float (num 1) - 1 in
    let len = int_of_float (num 2) in
    let start' = max 0 start in
    let len' = min (String.length s - start') (len - (start' - start)) in
    if len' <= 0 || start' >= String.length s then Str ""
    else Str (String.sub s start' len')
  | "sum", 1 -> (
    match arg 0 with
    | Nodeset ns ->
      Num
        (List.fold_left
           (fun acc n ->
             acc
             +.
             match float_of_string_opt (String.trim (Index.string_value ctx.idx n)) with
             | Some f -> f
             | None -> Float.nan)
           0.0 ns)
    | _ -> err "sum() expects a node-set")
  | "floor", 1 -> Num (Float.floor (num 0))
  | "ceiling", 1 -> Num (Float.ceil (num 0))
  | "round", 1 -> Num (Float.round (num 0))
  | _ -> err "unknown function %s/%d" f (List.length args)

(** Evaluate an expression with the document root as context node. *)
let eval_expr (idx : Index.t) (e : Ast.expr) : value =
  eval { idx; node = idx.Index.root; position = 1; size = 1 } e

(** Evaluate and coerce to a node list. *)
let select (idx : Index.t) (e : Ast.expr) : int list =
  match eval_expr idx e with
  | Nodeset ns -> List.filter (fun n -> n >= 0) ns
  | _ -> raise (Eval_error "expression does not yield a node-set")

let select_string (idx : Index.t) (src : string) : int list =
  select idx (Parse.expr src)

let eval_string (idx : Index.t) (src : string) : value =
  eval_expr idx (Parse.expr src)
