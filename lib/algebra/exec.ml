(** Plan execution.

    Bindings are arrays indexed by pattern variable ([-1] = unbound).
    Operators stream lists; [Expand] is the workhorse: follow the edge
    constraint from the bound endpoint and test the destination's node
    predicate. *)

open Gql_data

type binding = int array

(* [nav_links] is exact by contract, so it answers the bound-pair test
   for any constraint kind without touching adjacency. *)
let edge_ok ?(nav : Gql_graph.Homo.nav option)
    (c : (Graph.node_kind, Graph.edge) Gql_graph.Homo.edge_constraint)
    (data : Graph.t) ~src ~dst =
  match nav with
  | Some { Gql_graph.Homo.nav_links = Some links; _ } -> (
    match c with
    | Gql_graph.Homo.Direct _ | Gql_graph.Homo.Path _ -> links src dst
    | Gql_graph.Homo.Negated _ -> not (links src dst))
  | Some _ | None -> (
    match c with
    | Gql_graph.Homo.Direct p ->
      List.exists (fun (d, l) -> d = dst && p l) (Graph.out data src)
    | Gql_graph.Homo.Path rp -> Gql_graph.Regpath.connects rp (Graph.digraph data) ~src ~dst
    | Gql_graph.Homo.Negated p ->
      not (List.exists (fun (d, l) -> d = dst && p l) (Graph.out data src)))

(* Forward expansion candidates from [src].  An *exact* nav replaces the
   adjacency filter with a posting-set lookup; supersets are refused
   here because [Expand] does not re-check the edge constraint. *)
let expand_candidates ?(nav : Gql_graph.Homo.nav option)
    (c : (Graph.node_kind, Graph.edge) Gql_graph.Homo.edge_constraint)
    (data : Graph.t) ~(dir : Plan.edge_dir) (from : int) : int list =
  let nav_enum =
    match nav with
    | Some n when n.Gql_graph.Homo.nav_exact -> (
      match dir with
      | Plan.Forward -> n.Gql_graph.Homo.nav_out
      | Plan.Backward -> n.Gql_graph.Homo.nav_in)
    | Some _ | None -> None
  in
  match nav_enum with
  | Some enum -> Gql_graph.Iset.to_list (enum from)
  | None -> (
    match c, dir with
    | Gql_graph.Homo.Direct p, Plan.Forward ->
      List.filter_map (fun (d, l) -> if p l then Some d else None) (Graph.out data from)
    | Gql_graph.Homo.Direct p, Plan.Backward ->
      List.filter_map (fun (s, l) -> if p l then Some s else None) (Graph.inn data from)
    | Gql_graph.Homo.Path rp, Plan.Forward ->
      Gql_graph.Regpath.reachable rp (Graph.digraph data) from
    | Gql_graph.Homo.Path rp, Plan.Backward ->
      (* Reverse regular path: the engine's reverse automaton walks
         predecessor edges from [from], ascending — the same set (and
         order) the old whole-graph connects scan produced, without
         touching unrelated nodes. *)
      Gql_graph.Iset.to_list (Gql_graph.Regpath.reachable_rev_set rp (Graph.digraph data) from)
    | Gql_graph.Homo.Negated _, _ -> invalid_arg "cannot expand a negated edge")

let run ?(provider : (Graph.node_kind, Graph.edge) Gql_graph.Homo.provider option)
    ?domains (data : Graph.t)
    (pattern : (Graph.node_kind, Graph.edge) Gql_graph.Homo.pattern)
    (plan : Plan.t) : binding list =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Gql_graph.Par.default_domains ()
  in
  let k = Array.length pattern.Gql_graph.Homo.p_nodes in
  let node_pred v n = pattern.Gql_graph.Homo.p_nodes.(v) n (Graph.kind data n) in
  (* The scan and expand leaves fan out over domains ({!Gql_graph.Par}):
     chunked over the candidate range / input bindings, merged back in
     order, so plan output is byte-identical to sequential execution.
     Each leaf passes a work estimate so Par's cutoff keeps small
     operators sequential: a scan costs one predicate test per
     candidate, an expansion roughly an adjacency-filter per binding. *)
  let rec eval (p : Plan.t) : binding list =
    match p with
    | Plan.Scan { var; _ } -> (
      let indexed =
        match provider with
        | Some prov -> prov.Gql_graph.Homo.prov_candidates var
        | None -> None
      in
      match indexed with
      | Some cands ->
        (* index candidates are sorted ascending, like the scan below *)
        Gql_graph.Par.map_chunks
          ~cost:(Gql_graph.Iset.length cands)
          ~domains ~n:(Gql_graph.Iset.length cands)
          (fun lo hi ->
            let out = ref [] in
            for i = hi - 1 downto lo do
              let n = Gql_graph.Iset.get cands i in
              if node_pred var n then begin
                let b = Array.make k (-1) in
                b.(var) <- n;
                out := b :: !out
              end
            done;
            !out)
        |> List.concat
      | None ->
        Gql_graph.Par.map_chunks ~cost:(Graph.n_nodes data) ~domains
          ~n:(Graph.n_nodes data) (fun lo hi ->
            let out = ref [] in
            for n = hi - 1 downto lo do
              if node_pred var n then begin
                let b = Array.make k (-1) in
                b.(var) <- n;
                out := b :: !out
              end
            done;
            !out)
        |> List.concat)
    | Plan.Expand { input; src; dst; dir; cons; nav; _ } ->
      let bindings = eval input in
      (* Regular-path expansion with no exact nav would run one product
         search per *binding*; resolve the distinct source frontier in
         one batched sweep up front (single warm scratch, each source
         searched once) and serve the per-binding expansion by lookup.
         The table is built before the fan-out, so chunks only read. *)
      let path_table =
        match cons with
        | Gql_graph.Homo.Path rp
          when (match nav with
               | Some n -> not n.Gql_graph.Homo.nav_exact
               | None -> true) ->
          let seen = Hashtbl.create 64 in
          List.iter
            (fun b ->
              let f = b.(src) in
              if f >= 0 && not (Hashtbl.mem seen f) then Hashtbl.replace seen f ())
            bindings;
          let srcs = Array.of_seq (Hashtbl.to_seq_keys seen) in
          let sets =
            match dir with
            | Plan.Forward -> Gql_graph.Regpath.reachable_batch rp (Graph.digraph data) srcs
            | Plan.Backward ->
              Gql_graph.Regpath.reachable_rev_batch rp (Graph.digraph data) srcs
          in
          let tbl = Hashtbl.create (Array.length srcs) in
          Array.iteri
            (fun i s -> Hashtbl.replace tbl s (Gql_graph.Iset.to_list sets.(i)))
            srcs;
          Some tbl
        | _ -> None
      in
      Gql_graph.Par.concat_map_chunks
        ~cost:(List.length bindings * 8)
        ~domains
        (fun b ->
          let from = b.(src) in
          if from < 0 then []
          else
            (match path_table with
            | Some tbl -> Hashtbl.find tbl from
            | None -> expand_candidates ?nav cons data ~dir from)
            |> List.filter_map (fun cand ->
                   if node_pred dst cand then begin
                     let b' = Array.copy b in
                     b'.(dst) <- cand;
                     Some b'
                   end
                   else None))
        bindings
    | Plan.Edge_check { input; src; dst; cons; nav; _ } ->
      List.filter
        (fun b -> edge_ok ?nav cons data ~src:b.(src) ~dst:b.(dst))
        (eval input)
    | Plan.Cross { left; right; _ } ->
      let lefts = eval left and rights = eval right in
      List.concat_map
        (fun l ->
          List.map
            (fun r ->
              let merged = Array.copy l in
              Array.iteri (fun i v -> if v >= 0 then merged.(i) <- v) r;
              merged)
            rights)
        lefts
    | Plan.Filter { input; pred; _ } ->
      List.filter (fun b -> pred data b) (eval input)
  in
  eval plan

(** End-to-end: compile an XML-GL query, plan it, execute, and return
    bindings restricted to the query's own nodes (the same shape
    [Gql_xmlgl.Matching.run] returns, so results are comparable). *)
let run_xmlgl ?strategy ?index ?domains (data : Graph.t)
    (q : Gql_xmlgl.Ast.query) : int array list =
  let compiled = Gql_xmlgl.Matching.compile ?index data q in
  let job = Planner.job_of_xmlgl ?index compiled in
  let plan = Planner.build ?strategy data job in
  List.map
    (Gql_xmlgl.Matching.to_query_binding compiled)
    (run ?provider:job.Planner.provider ?domains data
       compiled.Gql_xmlgl.Matching.pattern plan)

(** The plan text for an XML-GL query — EXPLAIN.  Cost-based by default:
    EXPLAIN shows the plan a cost-aware server would run, annotated with
    the model's row/cost estimates. *)
let explain_xmlgl ?(strategy = `Cost) ?index (data : Graph.t)
    (q : Gql_xmlgl.Ast.query) : string =
  let compiled = Gql_xmlgl.Matching.compile ?index data q in
  let job = Planner.job_of_xmlgl ?index compiled in
  Plan.to_string (Planner.build ~strategy data job)

(** The plan text for a WG-Log rule's query part, via the same algebra
    route (the fixpoint evaluator itself stays non-algebraic; this is
    the EXPLAIN view of how one rule's pattern would be joined). *)
let explain_wglog ?(strategy = `Cost) ?index (data : Graph.t)
    (r : Gql_wglog.Ast.rule) : string =
  let job = Planner.job_of_wglog ?index r in
  if Array.length job.Planner.pattern.Gql_graph.Homo.p_nodes = 0 then
    "(empty query part)\n"
  else Plan.to_string (Planner.build ~strategy data job)
