(** The operator cost model (experiment E15).

    Every plan operator gets a cost formula over the planner's
    cardinality estimates; the unit is roughly "nanoseconds on the bench
    host", but only *ratios* matter for join ordering, so the constants
    are best read as relative operator weights.

    Inputs, in the order the planner can obtain them:

    - posting cardinalities — [Iset.length] of the index provider's
      candidate sets (O(1) since PR 5), refined by capped scans when no
      provider answers;
    - per-symbol edge fan-out — sampled from the provider's exact navs
      (a nav's posting set *is* the symbol-partitioned adjacency built
      from the CSR planes, so a handful of [Iset.length] probes gives
      the mean out-degree of that edge symbol), falling back to the
      graph's average degree (edges / nodes — the CSR degree summary);
    - regex-path reachability caps — a path edge with no sampled nav is
      charged [avg_degree * path_hops] reachable nodes, clamped to the
      node count.

    Formulas (R = input rows, f = fan-out, s = selectivity):

    - [Scan]: rows = |candidates|; cost = c_scan_indexed * rows with a
      posting set, c_scan_full * |nodes| for a whole-graph scan.
    - [Expand]: enumerates R*f neighbours, keeps R*f*s where s is the
      destination predicate's selectivity (|cand dst| / |nodes|);
      cost += c_expand_{direct,path} * R * f.
    - [Edge_check]: rows *= check_selectivity;
      cost += c_check_{direct,path} * R.
    - [Filter]: rows *= filter_selectivity; cost += c_filter * R.
    - [Cross]: rows = R_l * R_r; cost += c_cross * R_l * R_r.

    The constants below are fitted from the committed bench trajectory
    ([BENCH_PR*.json]) by [tools/fit_cost.ml] — see DESIGN.md for the
    calibration method. *)

type calib = {
  c_scan_indexed : float;  (** per candidate row emitted from a posting set *)
  c_scan_full : float;  (** per data node tested by an unindexed scan *)
  c_expand_direct : float;  (** per neighbour enumerated through adjacency *)
  c_expand_path : float;  (** per node reached by a regular-path expansion *)
  c_check_direct : float;  (** per input row of a direct/negated edge check *)
  c_check_path : float;  (** per input row of a regular-path edge check *)
  c_filter : float;  (** per input row of a residual filter *)
  c_cross : float;  (** per output row of a cartesian product *)
  path_hops : float;
      (** reachability cap for unsampled paths: avg degree × this *)
}

(* Fitted by tools/fit_cost.ml from BENCH_PR6.json (1-core CI host):
   full scan ~73 ns/node tested, indexed emit ~8 ns/row, direct
   expansion ~940 ns/neighbour and regular paths ~2x that at streaming
   (million-row) scale — the regime where ordering mistakes actually
   hurt; cache-resident fixtures run ~50x cheaper per item, a gap the
   linear model deliberately ignores (see the script header).  Checks,
   filters and cross are derived as small multiples of the indexed
   emit; path_hops is the mean chain length of the deep-1M fixture.
   Ratios are what the planner consumes. *)
let default =
  {
    c_scan_indexed = 8.2;
    c_scan_full = 73.2;
    c_expand_direct = 939.8;
    c_expand_path = 2032.6;
    c_check_direct = 16.4;
    c_check_path = 2032.6;
    c_filter = 24.6;
    c_cross = 8.2;
    path_hops = 487.0;
  }

(** Default selectivity of a bound-bound edge check / residual filter.
    Deliberately coarse: it only has to keep row estimates monotone in
    the number of applied predicates. *)
let check_selectivity = 0.5

let filter_selectivity = 0.5

(* --- formulas --------------------------------------------------------- *)

let scan (c : calib) ~indexed ~n_nodes ~card : Plan.est =
  let rows = float_of_int (max 0 card) in
  let cost =
    if indexed then c.c_scan_indexed *. rows
    else c.c_scan_full *. float_of_int (max 1 n_nodes)
  in
  { Plan.est_rows = rows; est_cost = cost }

let expand (c : calib) ~path ~(input : Plan.est) ~fanout ~dst_sel : Plan.est =
  let unit = if path then c.c_expand_path else c.c_expand_direct in
  let enumerated = input.Plan.est_rows *. Float.max 0.0 fanout in
  {
    Plan.est_rows = enumerated *. Float.min 1.0 (Float.max 0.0 dst_sel);
    est_cost = input.Plan.est_cost +. (unit *. enumerated);
  }

let edge_check (c : calib) ~path ~(input : Plan.est) : Plan.est =
  let unit = if path then c.c_check_path else c.c_check_direct in
  {
    Plan.est_rows = input.Plan.est_rows *. check_selectivity;
    est_cost = input.Plan.est_cost +. (unit *. input.Plan.est_rows);
  }

let filter (c : calib) ~(input : Plan.est) : Plan.est =
  {
    Plan.est_rows = input.Plan.est_rows *. filter_selectivity;
    est_cost = input.Plan.est_cost +. (c.c_filter *. input.Plan.est_rows);
  }

let cross (c : calib) ~(left : Plan.est) ~(right : Plan.est) : Plan.est =
  let rows = left.Plan.est_rows *. right.Plan.est_rows in
  {
    Plan.est_rows = rows;
    est_cost = left.Plan.est_cost +. right.Plan.est_cost +. (c.c_cross *. rows);
  }

(** Reachability cap for a regular-path edge whose fan-out cannot be
    sampled: how many nodes a path step is charged with reaching.
    [depth_bound] is the compiled automaton's longest accepted word when
    the language is finite ([Gql_graph.Regpath.depth_bound]): a bounded
    expression like [a b?] reaches at most [avg_degree ^ depth] nodes,
    which is far below the starred-expression cap [avg_degree *
    path_hops] that the old sampled estimate charged indiscriminately. *)
let path_fanout (c : calib) ~n_nodes ~avg_degree ~(depth_bound : int option) :
    float =
  let n = float_of_int (max 1 n_nodes) in
  match depth_bound with
  | Some 0 -> 1.0 (* only the empty word: the source itself *)
  | Some d ->
    let d = float_of_int (min d 32) in
    Float.min n (Float.max 1.0 (Float.max 1.0 avg_degree ** d))
  | None -> Float.min n (Float.max 1.0 avg_degree *. c.path_hops)
