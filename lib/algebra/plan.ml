(** Physical query plans.

    Both visual languages compile their query parts to the same pattern
    representation ([Gql_graph.Homo.pattern]); this module gives that
    pattern an explicit *plan* — the operator tree a database engine
    would show in EXPLAIN — so that planning decisions (join order,
    predicate pushdown) become visible, testable and benchable
    (experiments E7/E9).

    A plan computes a set of bindings: arrays indexed by pattern node. *)

open Gql_data

type edge_dir = Forward | Backward

type t =
  | Scan of { var : int; label : string }
      (** all data nodes satisfying the var's node predicate; [label] is
          only for display *)
  | Expand of {
      input : t;
      src : int;  (** already bound *)
      dst : int;  (** newly bound *)
      dir : edge_dir;
      cons : (Graph.node_kind, Graph.edge) Gql_graph.Homo.edge_constraint;
      nav : Gql_graph.Homo.nav option;
          (** index navigation for this edge; the executor enumerates
              through it only when [nav_exact] (supersets would need the
              re-check [Expand] doesn't do) *)
      label : string;
    }
  | Edge_check of {
      input : t;
      src : int;
      dst : int;
      cons : (Graph.node_kind, Graph.edge) Gql_graph.Homo.edge_constraint;
      nav : Gql_graph.Homo.nav option;
          (** [nav_links], when present, replaces the adjacency scan *)
      label : string;
    }  (** both endpoints bound: filter *)
  | Cross of t * t  (** disconnected components *)
  | Filter of { input : t; name : string; pred : Graph.t -> int array -> bool }
      (** residual predicates: value joins, ordered content, absent
          children, cross-node comparisons *)

let rec vars = function
  | Scan { var; _ } -> [ var ]
  | Expand { input; dst; _ } -> dst :: vars input
  | Edge_check { input; _ } | Filter { input; _ } -> vars input
  | Cross (a, b) -> vars a @ vars b

(** EXPLAIN-style rendering. *)
let to_string plan =
  let buf = Buffer.create 256 in
  let rec go indent p =
    let pad = String.make (2 * indent) ' ' in
    match p with
    | Scan { var; label } ->
      Buffer.add_string buf (Printf.sprintf "%sscan $%d (%s)\n" pad var label)
    | Expand { input; src; dst; dir; label; _ } ->
      Buffer.add_string buf
        (Printf.sprintf "%sexpand $%d %s $%d via %s\n" pad src
           (match dir with Forward -> "->" | Backward -> "<-")
           dst label);
      go (indent + 1) input
    | Edge_check { input; src; dst; label; _ } ->
      Buffer.add_string buf
        (Printf.sprintf "%scheck edge $%d -> $%d (%s)\n" pad src dst label);
      go (indent + 1) input
    | Cross (a, b) ->
      Buffer.add_string buf (Printf.sprintf "%scross\n" pad);
      go (indent + 1) a;
      go (indent + 1) b
    | Filter { input; name; _ } ->
      Buffer.add_string buf (Printf.sprintf "%sfilter %s\n" pad name);
      go (indent + 1) input
  in
  go 0 plan;
  Buffer.contents buf

(** Operator count, used as a sanity metric in tests. *)
let rec size = function
  | Scan _ -> 1
  | Expand { input; _ } | Edge_check { input; _ } | Filter { input; _ } ->
    1 + size input
  | Cross (a, b) -> 1 + size a + size b
