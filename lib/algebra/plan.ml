(** Physical query plans.

    Both visual languages compile their query parts to the same pattern
    representation ([Gql_graph.Homo.pattern]); this module gives that
    pattern an explicit *plan* — the operator tree a database engine
    would show in EXPLAIN — so that planning decisions (join order,
    predicate pushdown) become visible, testable and benchable
    (experiments E7/E9/E15).

    A plan computes a set of bindings: arrays indexed by pattern node.
    Each operator carries an optional {!est} annotation — the planner's
    estimated output rows and cumulative cost (abstract units, see
    {!Cost}) — which EXPLAIN renders as [rows=… cost=…] columns. *)

open Gql_data

type edge_dir = Forward | Backward

(** Planner estimate for one operator: rows flowing *out* of it and the
    cumulative cost of producing them (inputs included). *)
type est = { est_rows : float; est_cost : float }

type t =
  | Scan of { var : int; label : string; mutable est : est option }
      (** all data nodes satisfying the var's node predicate; [label] is
          only for display *)
  | Expand of {
      input : t;
      src : int;  (** already bound *)
      dst : int;  (** newly bound *)
      dir : edge_dir;
      cons : (Graph.node_kind, Graph.edge) Gql_graph.Homo.edge_constraint;
      nav : Gql_graph.Homo.nav option;
          (** index navigation for this edge; the executor enumerates
              through it only when [nav_exact] (supersets would need the
              re-check [Expand] doesn't do) *)
      label : string;
      mutable est : est option;
    }
  | Edge_check of {
      input : t;
      src : int;
      dst : int;
      cons : (Graph.node_kind, Graph.edge) Gql_graph.Homo.edge_constraint;
      nav : Gql_graph.Homo.nav option;
          (** [nav_links], when present, replaces the adjacency scan *)
      label : string;
      mutable est : est option;
    }  (** both endpoints bound: filter *)
  | Cross of { left : t; right : t; mutable est : est option }
      (** disconnected components *)
  | Filter of {
      input : t;
      name : string;
      pred : Graph.t -> int array -> bool;
      mutable est : est option;
    }
      (** residual predicates: value joins, ordered content, absent
          children, cross-node comparisons *)

let rec vars = function
  | Scan { var; _ } -> [ var ]
  | Expand { input; dst; _ } -> dst :: vars input
  | Edge_check { input; _ } | Filter { input; _ } -> vars input
  | Cross { left; right; _ } -> vars left @ vars right

let est = function
  | Scan { est; _ }
  | Expand { est; _ }
  | Edge_check { est; _ }
  | Cross { est; _ }
  | Filter { est; _ } ->
    est

let set_est p e =
  match p with
  | Scan r -> r.est <- Some e
  | Expand r -> r.est <- Some e
  | Edge_check r -> r.est <- Some e
  | Cross r -> r.est <- Some e
  | Filter r -> r.est <- Some e

(** The root annotation: estimated result rows and total plan cost. *)
let root_est = est

(* Compact deterministic number rendering for annotations: integers
   plain, small fractions with two decimals, big values in %.3g — the
   goldens under test/golden/ pin these bytes. *)
let fnum v =
  if Float.is_nan v then "nan"
  else if Float.abs v >= 1e7 then Printf.sprintf "%.3g" v
  else if Float.is_integer v then Printf.sprintf "%.0f" v
  else if Float.abs v < 10.0 then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.1f" v

let annot = function
  | None -> ""
  | Some e ->
    Printf.sprintf "  [rows=%s cost=%s]" (fnum e.est_rows) (fnum e.est_cost)

(** EXPLAIN-style rendering.  Annotated operators append their
    [rows=… cost=…] columns; unannotated plans render exactly as they
    did before estimates existed. *)
let to_string plan =
  let buf = Buffer.create 256 in
  let rec go indent p =
    let pad = String.make (2 * indent) ' ' in
    match p with
    | Scan { var; label; est } ->
      Buffer.add_string buf
        (Printf.sprintf "%sscan $%d (%s)%s\n" pad var label (annot est))
    | Expand { input; src; dst; dir; label; est; _ } ->
      Buffer.add_string buf
        (Printf.sprintf "%sexpand $%d %s $%d via %s%s\n" pad src
           (match dir with Forward -> "->" | Backward -> "<-")
           dst label (annot est));
      go (indent + 1) input
    | Edge_check { input; src; dst; label; est; _ } ->
      Buffer.add_string buf
        (Printf.sprintf "%scheck edge $%d -> $%d (%s)%s\n" pad src dst label
           (annot est));
      go (indent + 1) input
    | Cross { left; right; est } ->
      Buffer.add_string buf (Printf.sprintf "%scross%s\n" pad (annot est));
      go (indent + 1) left;
      go (indent + 1) right
    | Filter { input; name; est; _ } ->
      Buffer.add_string buf
        (Printf.sprintf "%sfilter %s%s\n" pad name (annot est));
      go (indent + 1) input
  in
  go 0 plan;
  Buffer.contents buf

(** Operator count, used as a sanity metric in tests. *)
let rec size = function
  | Scan _ -> 1
  | Expand { input; _ } | Edge_check { input; _ } | Filter { input; _ } ->
    1 + size input
  | Cross { left; right; _ } -> 1 + size left + size right

(** Does the plan contain a cartesian product anywhere?  The E15 bench
    and the sentinel-overflow regression test assert on this. *)
let rec has_cross = function
  | Scan _ -> false
  | Expand { input; _ } | Edge_check { input; _ } | Filter { input; _ } ->
    has_cross input
  | Cross _ -> true
