(** The planner: pattern -> plan.

    Two strategies, ablated by experiment E9:

    - [`Greedy] (the default): start each connected component at its most
      selective node (fewest candidates, estimated by one pass over the
      data graph) and always extend with the already-connected node that
      has the smallest candidate estimate — the classical fail-first
      heuristic;
    - [`Fixed]: bind pattern nodes in declaration order, connecting them
      to whatever is already bound.  This is what a naive reading of the
      visual graph gives and is the "optimiser off" baseline.

    Residual filters (value joins, ordered-content checks, negations
    whose endpoints are never adjacent in the traversal, cross-node
    predicates) are appended on top. *)

open Gql_data

type residual = { r_name : string; r_pred : Graph.t -> int array -> bool }

type job = {
  pattern : (Graph.node_kind, Graph.edge) Gql_graph.Homo.pattern;
  residuals : residual list;
  provider : (Graph.node_kind, Graph.edge) Gql_graph.Homo.provider option;
      (** index-backed candidates; sharpens the planner's estimates and
          replaces the executor's scans *)
}

let cons_label (c : (Graph.node_kind, Graph.edge) Gql_graph.Homo.edge_constraint) =
  match c with
  | Gql_graph.Homo.Direct _ -> "direct"
  | Gql_graph.Homo.Path _ -> "path"
  | Gql_graph.Homo.Negated _ -> "negated"

(** Candidate-count estimates.  With an index-backed provider, a node's
    count is the O(1) length of its posting set (an unfiltered sorted
    superset — close enough for join ordering, and free).  Nodes the
    provider cannot answer for are counted by scan, but each scan stops
    as soon as its count passes the best (smallest) score seen so far
    plus one: the planner only needs to know such a node is *not* the
    most selective, so planning cost no longer scales with the largest
    candidate list. *)
let estimates ?(provider : (Graph.node_kind, Graph.edge) Gql_graph.Homo.provider option)
    (data : Graph.t) (pat : (Graph.node_kind, Graph.edge) Gql_graph.Homo.pattern) :
    int array =
  let k = Array.length pat.Gql_graph.Homo.p_nodes in
  let counts = Array.make k 0 in
  let need_scan = Array.make k true in
  (match provider with
  | None -> ()
  | Some prov ->
    for v = 0 to k - 1 do
      match prov.Gql_graph.Homo.prov_candidates v with
      | None -> ()
      | Some cands ->
        need_scan.(v) <- false;
        counts.(v) <- Gql_graph.Iset.length cands
    done);
  if Array.exists Fun.id need_scan then begin
    let best = ref max_int in
    Array.iteri (fun v c -> if not need_scan.(v) then best := min !best c) counts;
    let n_data = Graph.n_nodes data in
    for v = 0 to k - 1 do
      if need_scan.(v) then begin
        let cap = if !best = max_int then max_int else !best + 1 in
        let c = ref 0 and n = ref 0 in
        while !c < cap && !n < n_data do
          if pat.Gql_graph.Homo.p_nodes.(v) !n (Graph.kind data !n) then incr c;
          incr n
        done;
        counts.(v) <- !c;
        best := min !best !c
      end
    done
  end;
  counts

let build ?(strategy = `Greedy) (data : Graph.t) (job : job) : Plan.t =
  let pat = job.pattern in
  let k = Array.length pat.Gql_graph.Homo.p_nodes in
  if k = 0 then invalid_arg "empty pattern";
  let est =
    match strategy with
    | `Greedy -> estimates ?provider:job.provider data pat
    | `Fixed -> Array.make k 0
  in
  (* The provider's per-edge navigation (p_edges order) rides along on
     Expand/Edge_check so the executor can enumerate and test through
     the index. *)
  let nav_of =
    match job.provider with
    | Some prov -> prov.Gql_graph.Homo.prov_nav
    | None -> fun _ -> None
  in
  (* Positive adjacency with constraints, keyed by p_edges position. *)
  let indexed_edges = List.mapi (fun i e -> (i, e)) pat.Gql_graph.Homo.p_edges in
  let pos_edges =
    List.filter
      (fun (_, (_, c, _)) ->
        match c with
        | Gql_graph.Homo.Negated _ -> false
        | Gql_graph.Homo.Direct _ | Gql_graph.Homo.Path _ -> true)
      indexed_edges
  in
  let neg_edges =
    List.filter
      (fun (_, (_, c, _)) ->
        match c with
        | Gql_graph.Homo.Negated _ -> true
        | Gql_graph.Homo.Direct _ | Gql_graph.Homo.Path _ -> false)
      indexed_edges
  in
  let bound = Array.make k false in
  let used = Array.make (List.length pos_edges) false in
  let pos_arr = Array.of_list pos_edges in
  (* Next node choice. *)
  let pick_next () =
    match strategy with
    | `Fixed ->
      let rec first i = if i >= k then -1 else if bound.(i) then first (i + 1) else i in
      first 0
    | `Greedy ->
      let best = ref (-1) and best_score = ref max_int in
      for v = 0 to k - 1 do
        if not bound.(v) then begin
          let connected =
            Array.exists
              (fun (_, (a, _, b)) -> (bound.(a) && b = v) || (bound.(b) && a = v))
              pos_arr
          in
          let score = if connected then est.(v) else est.(v) + 1_000_000 in
          if score < !best_score then begin
            best_score := score;
            best := v
          end
        end
      done;
      !best
  in
  (* Find an unused positive edge connecting the bound region to [v]. *)
  let connecting_edge v =
    let found = ref None in
    Array.iteri
      (fun i (ei, (a, c, b)) ->
        if !found = None && not used.(i) then
          if bound.(a) && b = v then begin
            used.(i) <- true;
            found := Some (a, c, b, Plan.Forward, nav_of ei)
          end
          else if bound.(b) && a = v then begin
            used.(i) <- true;
            found := Some (b, c, a, Plan.Backward, nav_of ei)
          end)
      pos_arr;
    !found
  in
  (* Remaining edges between two bound nodes become checks. *)
  let pending_checks () =
    let acc = ref [] in
    Array.iteri
      (fun i (ei, (a, c, b)) ->
        if (not used.(i)) && bound.(a) && bound.(b) then begin
          used.(i) <- true;
          acc := (a, c, b, nav_of ei) :: !acc
        end)
      pos_arr;
    List.rev !acc
  in
  let label_of v = Printf.sprintf "node%d" v in
  let rec grow plan =
    if Array.for_all Fun.id bound then plan
    else begin
      let v = pick_next () in
      let plan =
        match connecting_edge v with
        | Some (src, c, dst, dir, nav) ->
          bound.(v) <- true;
          Plan.Expand
            { input = plan; src; dst; dir; cons = c; nav; label = cons_label c }
        | None ->
          bound.(v) <- true;
          Plan.Cross (plan, Plan.Scan { var = v; label = label_of v })
      in
      let plan =
        List.fold_left
          (fun plan (a, c, b, nav) ->
            Plan.Edge_check
              { input = plan; src = a; dst = b; cons = c; nav; label = cons_label c })
          plan (pending_checks ())
      in
      grow plan
    end
  in
  let start = pick_next () in
  bound.(start) <- true;
  let plan = grow (Plan.Scan { var = start; label = label_of start }) in
  (* Negated edges as filters. *)
  let plan =
    List.fold_left
      (fun plan (ei, (a, c, b)) ->
        Plan.Edge_check
          { input = plan; src = a; dst = b; cons = c; nav = nav_of ei;
            label = "negated" })
      plan neg_edges
  in
  (* Residual filters. *)
  List.fold_left
    (fun plan r ->
      Plan.Filter { input = plan; name = r.r_name; pred = r.r_pred })
    plan job.residuals

(** Job construction from a compiled XML-GL query: the pattern plus its
    post-filters packaged as residuals; [index] attaches the frozen
    index's candidate provider. *)
let job_of_xmlgl ?(index : Index.t option) (c : Gql_xmlgl.Matching.compiled) :
    job =
  {
    pattern = c.Gql_xmlgl.Matching.pattern;
    residuals =
      [
        {
          r_name = "xmlgl-residuals";
          r_pred = (fun data emb -> Gql_xmlgl.Matching.embedding_ok c data emb);
        };
      ];
    provider = Option.map (fun idx -> Gql_xmlgl.Matching.provider idx c) index;
  }
