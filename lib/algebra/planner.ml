(** The planner: pattern -> plan.

    Three strategies, ablated by experiments E9 and E15:

    - [`Cost]: per-operator cost formulas ({!Cost}) over posting
      cardinalities and sampled edge fan-outs.  Each connected component
      of the pattern is ordered by dynamic programming over its
      connected subsets (left-deep, up to {!dp_max_nodes} nodes);
      larger components fall back to cost-greedy with one-step
      lookahead.  Components are stitched with [Cross] in increasing
      row-estimate order.
    - [`Greedy] (the default): start each connected component at its
      most selective node and always extend with the already-connected
      node that has the smallest candidate estimate — the classical
      fail-first heuristic.  Connectivity is compared lexicographically
      *before* the estimate, so a connected node can never lose to an
      unconnected one no matter how many candidates it has.
    - [`Fixed]: bind pattern nodes in declaration order, connecting them
      to whatever is already bound.  This is what a naive reading of the
      visual graph gives and is the "optimiser off" baseline.

    When several positive edges connect the next node to the bound
    region, the cheapest one (Direct before Path) carries the [Expand]
    and the others demote to [Edge_check]s.

    Residual filters (value joins, ordered-content checks, negations
    whose endpoints are never adjacent in the traversal, cross-node
    predicates) are appended on top.  Every built plan is annotated
    with {!Plan.est} rows/cost estimates, whatever the strategy. *)

open Gql_data
module H = Gql_graph.Homo
module Iset = Gql_graph.Iset

type strategy = [ `Greedy | `Fixed | `Cost ]

type residual = { r_name : string; r_pred : Graph.t -> int array -> bool }

type job = {
  pattern : (Graph.node_kind, Graph.edge) H.pattern;
  residuals : residual list;
  provider : (Graph.node_kind, Graph.edge) H.provider option;
      (** index-backed candidates; sharpens the planner's estimates and
          replaces the executor's scans *)
}

let cons_label (c : (Graph.node_kind, Graph.edge) H.edge_constraint) =
  match c with
  | H.Direct _ -> "direct"
  | H.Path _ -> "path"
  | H.Negated _ -> "negated"

let is_path (c : (Graph.node_kind, Graph.edge) H.edge_constraint) =
  match c with H.Path _ -> true | H.Direct _ | H.Negated _ -> false

(* Expanding through a Direct edge is cheaper than through a regular
   path; parallel edges between the same endpoints use this rank to
   decide which one carries the Expand. *)
let cons_rank c = if is_path c then 1 else 0

(** Candidate-count estimates.  With an index-backed provider, a node's
    count is the O(1) length of its posting set (an unfiltered sorted
    superset — close enough for join ordering, and free) and is exact.
    Nodes the provider cannot answer for are counted by scan, but each
    scan stops as soon as its count passes the best (smallest) score
    seen so far plus one: such a capped count is a *lower bound* that
    only proves the node is not the most selective, so it is returned
    with [exact = false] and must never be compared against another
    capped count as if it were real ([refine] below completes the scan
    on demand). *)
let make_estimates ?(provider : (Graph.node_kind, Graph.edge) H.provider option)
    (data : Graph.t) (pat : (Graph.node_kind, Graph.edge) H.pattern) :
    int array * bool array * (int -> unit) =
  let k = Array.length pat.H.p_nodes in
  let counts = Array.make k 0 in
  let exact = Array.make k false in
  let need_scan = Array.make k true in
  (match provider with
  | None -> ()
  | Some prov ->
    for v = 0 to k - 1 do
      match prov.H.prov_candidates v with
      | None -> ()
      | Some cands ->
        need_scan.(v) <- false;
        exact.(v) <- true;
        counts.(v) <- Iset.length cands
    done);
  let n_data = Graph.n_nodes data in
  let scan_count ~cap v =
    let c = ref 0 and n = ref 0 in
    while !c < cap && !n < n_data do
      if pat.H.p_nodes.(v) !n (Graph.kind data !n) then incr c;
      incr n
    done;
    (!c, !n >= n_data)
  in
  if Array.exists Fun.id need_scan then begin
    let best = ref max_int in
    Array.iteri (fun v c -> if not need_scan.(v) then best := min !best c) counts;
    for v = 0 to k - 1 do
      if need_scan.(v) then begin
        let cap = if !best = max_int then max_int else !best + 1 in
        let c, complete = scan_count ~cap v in
        counts.(v) <- c;
        exact.(v) <- complete;
        best := min !best c
      end
    done
  end;
  let refine v =
    if not exact.(v) then begin
      let c, _ = scan_count ~cap:max_int v in
      counts.(v) <- c;
      exact.(v) <- true
    end
  in
  (counts, exact, refine)

(** [(count, exact)] per pattern node — capped scan counts are lower
    bounds flagged inexact. *)
let estimates ?provider data pat : (int * bool) array =
  let counts, exact, _ = make_estimates ?provider data pat in
  Array.map2 (fun c e -> (c, e)) counts exact

(* One planned bind step: the node to bind and, when it connects to the
   already-bound region, the pos_arr index of the edge carrying the
   Expand ([None] starts a component: Scan, crossed in after the first). *)
type pick = { pk_var : int; pk_edge : int option }

let build ?(strategy : strategy = `Greedy) ?(calib = Cost.default)
    (data : Graph.t) (job : job) : Plan.t =
  let pat = job.pattern in
  let k = Array.length pat.H.p_nodes in
  if k = 0 then invalid_arg "empty pattern";
  let counts, exact, refine = make_estimates ?provider:job.provider data pat in
  let cands_of v =
    match job.provider with
    | Some prov -> prov.H.prov_candidates v
    | None -> None
  in
  (* The provider's per-edge navigation (p_edges order) rides along on
     Expand/Edge_check so the executor can enumerate and test through
     the index. *)
  let nav_of =
    match job.provider with
    | Some prov -> prov.H.prov_nav
    | None -> fun _ -> None
  in
  (* Positive adjacency with constraints, keyed by p_edges position. *)
  let indexed_edges = List.mapi (fun i e -> (i, e)) pat.H.p_edges in
  let pos_edges =
    List.filter (fun (_, (_, c, _)) -> not (match c with H.Negated _ -> true | _ -> false))
      indexed_edges
  in
  let neg_edges =
    List.filter (fun (_, (_, c, _)) -> match c with H.Negated _ -> true | _ -> false)
      indexed_edges
  in
  let pos_arr = Array.of_list pos_edges in
  let ne = Array.length pos_arr in
  let n_data = Graph.n_nodes data in
  let avg_degree =
    float_of_int (Graph.n_edges data) /. float_of_int (max 1 n_data)
  in
  (* --- cost-model inputs ------------------------------------------- *)
  (* Destination-predicate selectivity of binding node [v]. *)
  let sel v =
    if n_data = 0 then 0.0
    else Float.min 1.0 (float_of_int counts.(v) /. float_of_int n_data)
  in
  (* Mean fan-out of a nav in [dir], sampled over (up to 4 of) the
     source node's candidates.  An exact nav's posting sets are the
     symbol-partitioned adjacency, so the sample is the per-symbol
     degree summary the cost model wants. *)
  let sample_nav (nav : H.nav option) (dir : Plan.edge_dir) ~src_var =
    match nav with
    | Some n when n.H.nav_exact -> (
      let enum =
        match dir with
        | Plan.Forward -> n.H.nav_out
        | Plan.Backward -> n.H.nav_in
      in
      match enum, cands_of src_var with
      | Some f, Some cs when Iset.length cs > 0 ->
        let len = Iset.length cs in
        let samples = min 4 len in
        let tot = ref 0 in
        for s = 0 to samples - 1 do
          tot := !tot + Iset.length (f (Iset.get cs (s * len / samples)))
        done;
        Some (float_of_int !tot /. float_of_int samples)
      | _ -> None)
    | Some _ | None -> None
  in
  let fanout_fallback cons =
    match cons with
    | H.Path rp ->
      Cost.path_fanout calib ~n_nodes:n_data ~avg_degree
        ~depth_bound:(Gql_graph.Regpath.depth_bound rp)
    | H.Direct _ | H.Negated _ -> Float.max 1.0 avg_degree
  in
  let fanout_nav nav dir ~src_var ~cons =
    match sample_nav nav dir ~src_var with
    | Some f -> f
    | None -> fanout_fallback cons
  in
  let fan_memo : (int * Plan.edge_dir, float) Hashtbl.t = Hashtbl.create 16 in
  (* Fan-out of pos edge [i] traversed in [dir] (Forward: src -> dst). *)
  let fanout_of i dir =
    match Hashtbl.find_opt fan_memo (i, dir) with
    | Some f -> f
    | None ->
      let ei, (a, c, b) = pos_arr.(i) in
      let src_var = match dir with Plan.Forward -> a | Plan.Backward -> b in
      let f = fanout_nav (nav_of ei) dir ~src_var ~cons:c in
      Hashtbl.replace fan_memo (i, dir) f;
      f
  in
  let scan_est v =
    Cost.scan calib ~indexed:(cands_of v <> None) ~n_nodes:n_data ~card:counts.(v)
  in
  (* Expand estimate with a totality cap on direct edges: R sources
     cannot enumerate more than max(R, |edges|) neighbours, whatever the
     sampled fan-out claims — the sample is degree-biased on skewed
     graphs (evenly-spaced candidates can all be hubs), and without the
     cap a forward expansion over a skewed symbol looks arbitrarily
     worse than reality.  Regular paths may legitimately revisit, so
     they keep the raw sample. *)
  let expand_est ~path ~(input : Plan.est) ~fanout ~dst_sel =
    let fanout =
      if path then fanout
      else
        let cap =
          Float.max 1.0
            (float_of_int (Graph.n_edges data)
            /. Float.max 1.0 input.Plan.est_rows)
        in
        Float.min fanout cap
    in
    Cost.expand calib ~path ~input ~fanout ~dst_sel
  in
  (* Self-loop pos edges on [v] become checks the moment [v] binds. *)
  let self_checks v est0 =
    Array.fold_left
      (fun acc (_, (a, c, b)) ->
        if a = v && b = v then Cost.edge_check calib ~path:(is_path c) ~input:acc
        else acc)
      est0 pos_arr
  in
  (* Cost of binding [v] next given the bound region [in_mask] and the
     running estimate [cur]: pick the cheapest connecting edge for the
     Expand, demote the other connecting edges (and self-loops) to
     checks.  [None] when nothing connects. *)
  let extend_est (cur : Plan.est) (in_mask : int -> bool) v :
      (int * Plan.est) option =
    let conn = ref [] in
    for i = ne - 1 downto 0 do
      let _, (a, c, b) = pos_arr.(i) in
      if a = v && b = v then ()
      else if in_mask a && b = v then conn := (i, c, Plan.Forward) :: !conn
      else if in_mask b && a = v then conn := (i, c, Plan.Backward) :: !conn
    done;
    match !conn with
    | [] -> None
    | cands ->
      let try_edge (i, c, dir) =
        let e =
          expand_est ~path:(is_path c) ~input:cur ~fanout:(fanout_of i dir)
            ~dst_sel:(sel v)
        in
        let e =
          List.fold_left
            (fun acc (j, c', _) ->
              if j = i then acc
              else Cost.edge_check calib ~path:(is_path c') ~input:acc)
            e cands
        in
        (i, self_checks v e)
      in
      let best =
        List.fold_left
          (fun acc cand ->
            let _, e = try_edge cand in
            match acc with
            | Some (_, be) when be.Plan.est_cost <= e.Plan.est_cost -> acc
            | _ -> Some (try_edge cand))
          None cands
      in
      best
  in
  (* --- heuristic orders (Greedy / Fixed) ---------------------------- *)
  (* Cheapest unused edge connecting the bound region to [v]: Direct
     preferred over Path, ties by declaration order; the others stay for
     pending_checks. *)
  let choose_edge bound used v =
    let best = ref None in
    Array.iteri
      (fun i (_, (a, c, b)) ->
        if
          (not used.(i))
          && (not (a = v && b = v))
          && ((bound.(a) && b = v) || (bound.(b) && a = v))
        then
          match !best with
          | Some (_, r) when r <= cons_rank c -> ()
          | _ -> best := Some (i, cons_rank c))
      pos_arr;
    match !best with
    | None -> None
    | Some (i, _) ->
      used.(i) <- true;
      Some i
  in
  (* After binding, edges whose endpoints are now both bound are
     consumed (the assembler emits them as checks at the same point). *)
  let consume_pending bound used =
    Array.iteri
      (fun i (_, (a, _, b)) ->
        if (not used.(i)) && bound.(a) && bound.(b) then used.(i) <- true)
      pos_arr
  in
  (* Greedy next choice: (connectivity, estimate) compared
     lexicographically — a connected node always beats an unconnected
     one, however large its candidate count (the old additive sentinel
     overflowed exactly there).  Capped counts are refined before they
     can decide a winner. *)
  let pick_min cands =
    match cands with
    | [] -> None
    | [ v ] -> Some v (* nothing to order against: skip refinement *)
    | _ ->
      let rec go () =
        let best =
          List.fold_left
            (fun acc v ->
              match acc with
              | Some b when counts.(b) <= counts.(v) -> acc
              | _ -> Some v)
            None cands
        in
        match best with
        | Some b when not exact.(b) ->
          (* a capped count is only a lower bound; it cannot win a
             comparison until the scan completes *)
          refine b;
          go ()
        | other -> other
      in
      go ()
  in
  let greedy_pick bound =
    let connected v =
      Array.exists
        (fun (_, (a, _, b)) -> (bound.(a) && b = v) || (bound.(b) && a = v))
        pos_arr
    in
    let unbound conn =
      List.filter
        (fun v -> (not bound.(v)) && connected v = conn)
        (List.init k Fun.id)
    in
    match pick_min (unbound true) with
    | Some v -> Some v
    | None -> pick_min (unbound false)
  in
  let heuristic_order next =
    let bound = Array.make k false and used = Array.make ne false in
    let picks = ref [] in
    let rec loop () =
      match next bound with
      | None -> ()
      | Some v ->
        let e = choose_edge bound used v in
        bound.(v) <- true;
        consume_pending bound used;
        picks := { pk_var = v; pk_edge = e } :: !picks;
        loop ()
    in
    loop ();
    List.rev !picks
  in
  let fixed_pick bound =
    let rec first i =
      if i >= k then None else if bound.(i) then first (i + 1) else Some i
    in
    first 0
  in
  (* --- cost-based order --------------------------------------------- *)
  let dp_max_nodes = 10 in
  let components () =
    let comp = Array.make k (-1) in
    let n_comp = ref 0 in
    for v = 0 to k - 1 do
      if comp.(v) < 0 then begin
        let id = !n_comp in
        incr n_comp;
        let queue = Queue.create () in
        Queue.add v queue;
        comp.(v) <- id;
        while not (Queue.is_empty queue) do
          let u = Queue.pop queue in
          Array.iter
            (fun (_, (a, _, b)) ->
              let link x y =
                if x = u && comp.(y) < 0 then begin
                  comp.(y) <- id;
                  Queue.add y queue
                end
              in
              link a b;
              link b a)
            pos_arr
        done
      end
    done;
    List.init !n_comp (fun id ->
        List.filter (fun v -> comp.(v) = id) (List.init k Fun.id))
  in
  (* Exact left-deep join order of one connected component: DP over its
     connected subsets (<= 2^dp_max_nodes states). *)
  let dp_order comp : pick list * Plan.est =
    let m = List.length comp in
    let vs = Array.of_list comp in
    let bit = Hashtbl.create m in
    Array.iteri (fun j v -> Hashtbl.replace bit v j) vs;
    let size = 1 lsl m in
    let best : Plan.est option array = Array.make size None in
    let choice = Array.make size (-1, -1, None) in
    for j = 0 to m - 1 do
      let mask = 1 lsl j in
      best.(mask) <- Some (self_checks vs.(j) (scan_est vs.(j)));
      choice.(mask) <- (0, vs.(j), None)
    done;
    for mask = 1 to size - 1 do
      match best.(mask) with
      | None -> ()
      | Some cur ->
        let in_mask v =
          match Hashtbl.find_opt bit v with
          | Some j -> mask land (1 lsl j) <> 0
          | None -> false
        in
        for j = 0 to m - 1 do
          if mask land (1 lsl j) = 0 then begin
            match extend_est cur in_mask vs.(j) with
            | None -> ()
            | Some (edge, e) ->
              let mask' = mask lor (1 lsl j) in
              let better =
                match best.(mask') with
                | None -> true
                | Some old -> e.Plan.est_cost < old.Plan.est_cost
              in
              if better then begin
                best.(mask') <- Some e;
                choice.(mask') <- (mask, vs.(j), Some edge)
              end
            end
        done
    done;
    let full = size - 1 in
    let rec unwind mask acc =
      let prev, v, edge = choice.(mask) in
      let acc = { pk_var = v; pk_edge = edge } :: acc in
      if prev = 0 then acc else unwind prev acc
    in
    (unwind full [], Option.get best.(full))
  in
  (* Above the DP bound: cost-greedy with one-step lookahead — charge
     each candidate its own cost plus the cheapest immediate follow-up,
     so a cheap step that forces an expensive successor loses to a
     slightly dearer step with cheap continuations. *)
  let lookahead_order comp : pick list * Plan.est =
    let in_set = Array.make k false in
    let member = Array.make k false in
    List.iter (fun v -> member.(v) <- true) comp;
    let start =
      List.iter refine comp;
      List.fold_left
        (fun acc v ->
          match acc with
          | Some b when counts.(b) <= counts.(v) -> acc
          | _ -> Some v)
        None comp
      |> Option.get
    in
    in_set.(start) <- true;
    let cur = ref (self_checks start (scan_est start)) in
    let picks = ref [ { pk_var = start; pk_edge = None } ] in
    let remaining = ref (List.length comp - 1) in
    while !remaining > 0 do
      let bound_now v = in_set.(v) in
      let cands =
        List.filter_map
          (fun v ->
            if in_set.(v) then None
            else
              match extend_est !cur bound_now v with
              | None -> None
              | Some (edge, e) -> Some (v, edge, e))
          comp
      in
      let scored =
        List.map
          (fun (v, edge, e) ->
            let after w = in_set.(w) || w = v in
            let look =
              List.fold_left
                (fun acc w ->
                  if member.(w) && (not in_set.(w)) && w <> v then
                    match extend_est e after w with
                    | Some (_, e') ->
                      let inc = e'.Plan.est_cost -. e.Plan.est_cost in
                      Float.min acc inc
                    | None -> acc
                  else acc)
                infinity comp
            in
            let look = if look = infinity then 0.0 else look in
            (v, edge, e, e.Plan.est_cost +. look))
          cands
      in
      let v, edge, e, _ =
        List.fold_left
          (fun acc ((_, _, _, s) as cand) ->
            match acc with
            | Some (_, _, _, bs) when bs <= s -> acc
            | _ -> Some cand)
          None scored
        |> Option.get
      in
      in_set.(v) <- true;
      cur := e;
      decr remaining;
      picks := { pk_var = v; pk_edge = Some edge } :: !picks
    done;
    (List.rev !picks, !cur)
  in
  let cost_order () =
    (* The DP compares scan estimates across all nodes of a component,
       so every count must be real — capped lower bounds would repeat
       the greedy planner's old tie-breaking bug at the DP level.  The
       plan cache amortises these scans across serve traffic. *)
    for v = 0 to k - 1 do
      refine v
    done;
    let comps =
      List.map
        (fun comp ->
          if List.length comp <= dp_max_nodes then dp_order comp
          else lookahead_order comp)
        (components ())
    in
    (* Cross components in increasing row-estimate order: the small side
       drives, keeping intermediate products minimal. *)
    let comps =
      List.stable_sort
        (fun (_, a) (_, b) -> Float.compare a.Plan.est_rows b.Plan.est_rows)
        comps
    in
    List.concat_map fst comps
  in
  let picks =
    match strategy with
    | `Fixed -> heuristic_order fixed_pick
    | `Greedy -> heuristic_order greedy_pick
    | `Cost -> cost_order ()
  in
  (* --- assembly ------------------------------------------------------ *)
  let label_of v = Printf.sprintf "node%d" v in
  let bound = Array.make k false and used = Array.make ne false in
  let emit_checks plan =
    let acc = ref plan in
    Array.iteri
      (fun i (ei, (a, c, b)) ->
        if (not used.(i)) && bound.(a) && bound.(b) then begin
          used.(i) <- true;
          acc :=
            Plan.Edge_check
              { input = !acc; src = a; dst = b; cons = c; nav = nav_of ei;
                label = cons_label c; est = None }
        end)
      pos_arr;
    !acc
  in
  let bind_step plan { pk_var = v; pk_edge } =
    let plan =
      match pk_edge with
      | Some i ->
        used.(i) <- true;
        let ei, (a, c, b) = pos_arr.(i) in
        let src, dst, dir =
          if bound.(a) && b = v then (a, v, Plan.Forward)
          else (b, v, Plan.Backward)
        in
        bound.(v) <- true;
        Plan.Expand
          { input = plan; src; dst; dir; cons = c; nav = nav_of ei;
            label = cons_label c; est = None }
      | None ->
        bound.(v) <- true;
        Plan.Cross
          { left = plan;
            right = Plan.Scan { var = v; label = label_of v; est = None };
            est = None }
    in
    emit_checks plan
  in
  let plan =
    match picks with
    | [] -> invalid_arg "empty pattern"
    | { pk_var = v0; pk_edge = _ } :: rest ->
      bound.(v0) <- true;
      let start =
        emit_checks (Plan.Scan { var = v0; label = label_of v0; est = None })
      in
      List.fold_left bind_step start rest
  in
  (* Negated edges as filters. *)
  let plan =
    List.fold_left
      (fun plan (ei, (a, c, b)) ->
        Plan.Edge_check
          { input = plan; src = a; dst = b; cons = c; nav = nav_of ei;
            label = "negated"; est = None })
      plan neg_edges
  in
  (* Residual filters. *)
  let plan =
    List.fold_left
      (fun plan r ->
        Plan.Filter { input = plan; name = r.r_name; pred = r.r_pred; est = None })
      plan job.residuals
  in
  (* --- annotation ---------------------------------------------------- *)
  (* Rows/cost estimates for EXPLAIN, computed with the same formulas
     whatever strategy shaped the plan (so E15 can compare the model's
     opinion of each).  Scan cards are refined first: a capped count is
     good enough to order joins but would lie in the output. *)
  let rec annotate (p : Plan.t) : Plan.est =
    let e =
      match p with
      | Plan.Scan { var; _ } ->
        refine var;
        scan_est var
      | Plan.Expand { input; src; dir; dst; cons; nav; _ } ->
        let input = annotate input in
        let fanout = fanout_nav nav dir ~src_var:src ~cons in
        expand_est ~path:(is_path cons) ~input ~fanout ~dst_sel:(sel dst)
      | Plan.Edge_check { input; cons; _ } ->
        Cost.edge_check calib ~path:(is_path cons) ~input:(annotate input)
      | Plan.Cross { left; right; _ } ->
        Cost.cross calib ~left:(annotate left) ~right:(annotate right)
      | Plan.Filter { input; _ } -> Cost.filter calib ~input:(annotate input)
    in
    Plan.set_est p e;
    e
  in
  ignore (annotate plan);
  plan

(** Job construction from a compiled XML-GL query: the pattern plus its
    post-filters packaged as residuals; [index] attaches the frozen
    index's candidate provider. *)
let job_of_xmlgl ?(index : Index.t option) (c : Gql_xmlgl.Matching.compiled) :
    job =
  {
    pattern = c.Gql_xmlgl.Matching.pattern;
    residuals =
      [
        {
          r_name = "xmlgl-residuals";
          r_pred = (fun data emb -> Gql_xmlgl.Matching.embedding_ok c data emb);
        };
      ];
    provider = Option.map (fun idx -> Gql_xmlgl.Matching.provider idx c) index;
  }

(** Job construction from a WG-Log rule's query part, for the algebra
    EXPLAIN route: the compiled pattern (label tests specialised to
    interned symbols when an index is given), the evaluator's provider,
    and its negation checks packaged as residuals. *)
let job_of_wglog ?(index : Index.t option) (r : Gql_wglog.Ast.rule) : job =
  let cq = Gql_wglog.Eval.compile_query r in
  let pattern =
    match index with
    | Some idx -> Gql_wglog.Eval.specialised_pattern idx cq
    | None -> cq.Gql_wglog.Eval.pattern
  in
  let n_rule = Array.length r.Gql_wglog.Ast.nodes in
  let residuals =
    (if cq.Gql_wglog.Eval.neg_checks = [] then []
     else
       [
         {
           r_name = "wglog-negations";
           r_pred =
             (fun data emb ->
               let full = Array.make n_rule (-1) in
               Array.iteri
                 (fun pos qid -> full.(qid) <- emb.(pos))
                 cq.Gql_wglog.Eval.query_ids;
               Gql_wglog.Eval.neg_checks_ok ?index data cq full);
         };
       ])
    @
    if cq.Gql_wglog.Eval.global_negs = [] then []
    else
      [
        {
          r_name = "wglog-global-negations";
          r_pred = (fun data _ -> Gql_wglog.Eval.global_negs_ok ?index data cq);
        };
      ]
  in
  {
    pattern;
    residuals;
    provider = Option.map (fun idx -> Gql_wglog.Eval.provider idx cq) index;
  }
