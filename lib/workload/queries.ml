(** The fixed query suite.

    Q1-Q9 are XML-GL programs (textual syntax, parsed at first use);
    Q10-Q12 are the WG-Log rules of the paper's figures.  Where the
    query is expressible navigationally, the XPath equivalent is given
    so benches can race the engines on identical questions.

    Q1/E3  all books, deep copy               (figure XML-GL-simple)
    Q2     selection: titles of books > 40
    Q3/E4  aggregation: persons with address  (figure XML-GL-aggregate)
    Q4     value join: products & their vendors' countries
    Q5     regex selection: vendors /Van.°/
    Q6     negation: persons without address
    Q7     deep edge: last names at any depth
    Q8     ordered containment: title before price
    Q9     grouping: persons per employer     (list icon)
    Q10/E1 WG-Log: rest-list of restaurants offering menus
    Q11/E5 WG-Log: sibling links              (figure GraphLog-simple)
    Q12/E5 WG-Log: root links via index+      (figure GraphLog-root) *)

let q1_src =
  {|xmlgl
result books
rule
query
  node $b elem BOOK
construct
  node c copy $b deep
  root c
end
|}

let q1_xpath = "//BOOK"

let q2_src =
  {|xmlgl
result expensive-titles
rule
query
  node $b elem BOOK
  node $t elem title
  node $p elem price where self > 40
  edge $b $t
  edge $b $p
construct
  node c copy $t deep
  root c
end
|}

let q2_xpath = "//BOOK[price > 40]/title"

let q3_src =
  {|xmlgl
result RESULT
rule
query
  node $p elem PERSON
  node $a elem FULLADDR
  node $fn elem firstname
  node $ln elem lastname
  edge $p $a
  edge $p $fn
  edge $p $ln
construct
  node person copy $p
  node fn copy $fn deep
  node ln copy $ln deep
  root person
  edge person fn
  edge person ln
end
|}

let q3_xpath = "//PERSON[FULLADDR]"

let q4_src =
  {|xmlgl
result product-origins
rule
query
  node $prod elem product
  node $pv elem vendor
  node $pvname content
  node $v elem vendor
  node $vname elem name
  node $vc elem country
  node $cval content
  edge $prod $pv
  edge $pv $pvname
  edge $v $vname
  edge $vname $pvname
  edge $v $vc
  edge $vc $cval
construct
  node origin new origin per $prod
  node p copy $prod deep
  node c value $cval
  root origin
  edge origin p
  edge origin c
end
|}

(* The value join: $pvname is shared between the product's vendor element
   and the vendors section's name element — the acyclic-graph join of the
   paper.  Navigationally this needs a nested predicate: *)
let q4_xpath = "//product[vendor = //vendors/vendor/name]"

let q5_src =
  {|xmlgl
result van-vendors
rule
query
  node $v elem vendor
  node $n content where self ~ /Van.*/
  edge $v $n
construct
  node c copy $v deep
  root c
end
|}

let q5_xpath = "//vendor[starts-with(., \"Van\")]"

let q6_src =
  {|xmlgl
result homeless
rule
query
  node $p elem PERSON
  node $a elem FULLADDR
  node $ln elem lastname
  edge $p $ln
  absent $p $a
construct
  node c copy $ln deep
  root c
end
|}

let q6_xpath = "//PERSON[not(FULLADDR)]/lastname"

let q7_src =
  {|xmlgl
result all-last-names
rule
query
  node $root elem bib
  node $ln elem last-name
  deep $root $ln
construct
  node c copy $ln deep
  root c
end
|}

let q7_xpath = "/bib//last-name"

let q8_src =
  {|xmlgl
result well-ordered
rule
query
  node $b elem BOOK
  node $t elem title
  node $p elem price
  edge $b $t ordered
  edge $b $p ordered
construct
  node c copy $b
  node t copy $t deep
  node p copy $p deep
  root c
  edge c t
  edge c p
end
|}

let q8_xpath = "//BOOK[title][price][title/following-sibling::price]"

let q9_src =
  {|xmlgl
result by-employer
rule
query
  node $p elem PERSON
  node $e elem employer
  node $ev content
  edge $p $e
  edge $e $ev
construct
  node g group $ev
  node bucket new employer-group
  node key value $ev
  node member copy $p
  root g
  edge g bucket
  edge bucket key attr name
  edge bucket member
end
|}

(* Q10: the WG-Log figure — build a rest-list collecting every
   Restaurant that offers a Menu. *)
let q10_src =
  {|wglog
rule
  node r Restaurant
  node m Menu
  edge r offers m
  cnode L rest-list
  collect L member r
end
|}

(* Q11: GraphLog sibling — two documents indexed by the same document
   become siblings. *)
let q11_src =
  {|wglog
rule
  node i Document
  node a Document
  node b Document
  edge i index a
  edge i index b
  cedge a sibling b
end
|}

(* Q12: GraphLog root — a document with no incoming index reaches others
   via index+; derive root edges.  The "no incoming index" condition is
   expressed with a negated self-loop-free edge from any document. *)
let q12_src =
  {|wglog
rule
  node r Document
  node o Document
  node d Document
  negedge o index r
  pathedge r index+ d
  cedge r root d
end
|}

(* Q13-Q15: pure-goal queries over the million-node parallel-scaling
   fixtures (Gen.wide_graph / deep_graph / skewed_graph).  Each binds
   the rare label first — the fail-first scorer guarantees it — and
   completes per-seed, so all the work sits past the first choice
   point, the shape E13v2 measures. *)
let q13_src =
  {|wglog
rule
  node h Hub
  node i Item
  edge h rel i
end
|}

let q14_src =
  {|wglog
rule
  node h Head
  node t Cell
  pathedge h next+ t
end
|}

let q15_src =
  {|wglog
rule
  node g Group
  node m Member
  edge g member m
end
|}

(* --- parsed forms, memoised ----------------------------------------- *)

let parse_xmlgl = Gql_lang.Xmlgl_text.parse_program
let parse_wglog = Gql_lang.Wglog_text.parse_program

let q1 = lazy (parse_xmlgl q1_src)
let q2 = lazy (parse_xmlgl q2_src)
let q3 = lazy (parse_xmlgl q3_src)
let q4 = lazy (parse_xmlgl q4_src)
let q5 = lazy (parse_xmlgl q5_src)
let q6 = lazy (parse_xmlgl q6_src)
let q7 = lazy (parse_xmlgl q7_src)
let q8 = lazy (parse_xmlgl q8_src)
let q9 = lazy (parse_xmlgl q9_src)
let q10 = lazy (parse_wglog ~schema:Gql_wglog.Schema.restaurant_schema q10_src)
let q11 = lazy (parse_wglog ~schema:Gql_wglog.Schema.hyperdoc_schema q11_src)
let q12 = lazy (parse_wglog ~schema:Gql_wglog.Schema.hyperdoc_schema q12_src)
let q13 = lazy (parse_wglog ~schema:Gql_wglog.Schema.scale_schema q13_src)
let q14 = lazy (parse_wglog ~schema:Gql_wglog.Schema.scale_schema q14_src)
let q15 = lazy (parse_wglog ~schema:Gql_wglog.Schema.scale_schema q15_src)

type entry = {
  name : string;
  description : string;
  kind : [ `Xmlgl of Gql_xmlgl.Ast.program Lazy.t | `Wglog of Gql_wglog.Ast.program Lazy.t ];
  xpath : string option;
  workload : [ `Bibliography | `Greengrocer | `People | `Restaurants | `Hyperdocs ];
}

let suite : entry list =
  [
    { name = "Q1"; description = "all books (deep copy)"; kind = `Xmlgl q1;
      xpath = Some q1_xpath; workload = `Bibliography };
    { name = "Q2"; description = "titles of books over 40"; kind = `Xmlgl q2;
      xpath = Some q2_xpath; workload = `Bibliography };
    { name = "Q3"; description = "persons with address (aggregate)"; kind = `Xmlgl q3;
      xpath = Some q3_xpath; workload = `People };
    { name = "Q4"; description = "product-vendor value join"; kind = `Xmlgl q4;
      xpath = Some q4_xpath; workload = `Greengrocer };
    { name = "Q5"; description = "vendors matching /Van.*/"; kind = `Xmlgl q5;
      xpath = Some q5_xpath; workload = `Greengrocer };
    { name = "Q6"; description = "persons without address (negation)"; kind = `Xmlgl q6;
      xpath = Some q6_xpath; workload = `People };
    { name = "Q7"; description = "last names at any depth"; kind = `Xmlgl q7;
      xpath = Some q7_xpath; workload = `Bibliography };
    { name = "Q8"; description = "title before price (ordered)"; kind = `Xmlgl q8;
      xpath = Some q8_xpath; workload = `Bibliography };
    { name = "Q9"; description = "persons grouped by employer"; kind = `Xmlgl q9;
      xpath = None; workload = `People };
    { name = "Q10"; description = "rest-list of menu-offering restaurants"; kind = `Wglog q10;
      xpath = None; workload = `Restaurants };
    { name = "Q11"; description = "derive sibling links"; kind = `Wglog q11;
      xpath = None; workload = `Hyperdocs };
    { name = "Q12"; description = "derive root links via index+"; kind = `Wglog q12;
      xpath = None; workload = `Hyperdocs };
  ]

(* --- textual MATCH variants --------------------------------------------- *)

(* The same questions asked through the GPML-style textual front-end:
   containment edges of an encoded document carry the empty name (so
   [-[]->] steps one level down and [-[:.+]->] any number), attribute
   slots and entity relations are named.  These ride the server suite so
   E12 and the served byte-identity tests exercise the textual path. *)

let m1_src =
  {|MATCH (b:BOOK)-[]->(t:title)
RETURN b, t.value
|}

let m2_src =
  {|MATCH (b:bib)-[:.+]->(n:last-name)
RETURN n.value
|}

let m3_src =
  {|MATCH (p:PERSON)-[]->(n:lastname)
NOT EXISTS { (p)-[]->(a:FULLADDR) }
RETURN p, n.value
|}

let m4_src =
  {|MATCH (v:vendor)-[]->(c:country)
WHERE c.value <> "nowhere"
RETURN v, c.value
|}

let m5_src =
  {|MATCH (r:Restaurant)-[:offers]->(m:Menu)-[:price]->(p)
WHERE p.value >= 20
RETURN m, p.value
|}

(* --- the server workload ------------------------------------------------ *)

(** One request of the serving workload: run [source] against the
    registered document [doc] (under [schema] for WG-Log sources). *)
type server_query = {
  sq_name : string;
  doc : string;
  schema : string option;
  source : string;
}

(** Every suite query that makes sense against a *served* snapshot,
    tagged with the document name the server-side registries use
    (documents are registered under their generator names).  Q10 is the
    WG-Log member: it exercises the server's fork-per-request path. *)
let server_suite : server_query list =
  [
    { sq_name = "Q1"; doc = "bibliography"; schema = None; source = q1_src };
    { sq_name = "Q2"; doc = "bibliography"; schema = None; source = q2_src };
    { sq_name = "Q7"; doc = "bibliography"; schema = None; source = q7_src };
    { sq_name = "Q8"; doc = "bibliography"; schema = None; source = q8_src };
    { sq_name = "Q3"; doc = "people"; schema = None; source = q3_src };
    { sq_name = "Q6"; doc = "people"; schema = None; source = q6_src };
    { sq_name = "Q9"; doc = "people"; schema = None; source = q9_src };
    { sq_name = "Q4"; doc = "greengrocer"; schema = None; source = q4_src };
    { sq_name = "Q5"; doc = "greengrocer"; schema = None; source = q5_src };
    { sq_name = "Q10"; doc = "restaurants"; schema = Some "restaurant";
      source = q10_src };
    { sq_name = "M1"; doc = "bibliography"; schema = None; source = m1_src };
    { sq_name = "M2"; doc = "bibliography"; schema = None; source = m2_src };
    { sq_name = "M3"; doc = "people"; schema = None; source = m3_src };
    { sq_name = "M4"; doc = "greengrocer"; schema = None; source = m4_src };
    { sq_name = "M5"; doc = "restaurants"; schema = None; source = m5_src };
  ]

(** A reproducible request stream: [n] draws from {!server_suite} under
    [seed] — the same seed always yields the same mixed WG-Log/XML-GL
    sequence, which is what makes load tests and E12 comparable
    run-to-run. *)
let server_mix ?(seed = 0) n : server_query list =
  let rng = Prng.create (0x5e12 + seed) in
  List.init n (fun _ -> Prng.pick_list rng server_suite)
