(** Synthetic workload generators.

    Four families, all seeded and size-parametric:

    - {!bibliography}: documents over the paper's BOOK/AUTHOR DTD
      (figure XML-GL-DTD2), with an optional defect rate for validation
      experiments;
    - {!greengrocer}: the supplied text's running products/vendors
      database, including the vendor name value-join the examples use;
    - {!people}: the PERSON/FULLADDR corpus of the aggregation figure
      (E4), with a controllable fraction of persons lacking an address;
    - {!hyperdocs}: GraphLog's hyperdocument link graphs (E5/E8) as a
      data graph with [link]/[index] relations;
    - {!random_tree}: depth/fanout-controlled trees with ID/IDREF noise
      for scalability sweeps (E7). *)

open Gql_xml.Tree

let first_names =
  [| "Serge"; "Sara"; "Dan"; "Stefano"; "Letizia"; "Paolo"; "Ernesto";
     "Alice"; "Bob"; "Carla"; "David"; "Eva"; "Franz"; "Greta" |]

let last_names =
  [| "Abiteboul"; "Comai"; "Suciu"; "Ceri"; "Tanca"; "Fraternali";
     "Damiani"; "Smith"; "Jones"; "Miller"; "Weber"; "Rossi"; "Kim" |]

let words =
  [| "Data"; "Web"; "Query"; "Graph"; "Semi"; "Structured"; "Visual";
     "Language"; "System"; "Model"; "XML"; "Information"; "Pattern" |]

let title rng =
  Printf.sprintf "%s %s %s" (Prng.pick rng words) (Prng.pick rng words)
    (Prng.pick rng words)

(* --- bibliography ---------------------------------------------------- *)

let book_dtd_text =
  "<!ELEMENT bib (BOOK*)>\n\
   <!ELEMENT BOOK (title?,price,AUTHOR*)>\n\
   <!ATTLIST BOOK isbn CDATA #REQUIRED>\n\
   <!ELEMENT title (#PCDATA)>\n\
   <!ELEMENT price (#PCDATA)>\n\
   <!ELEMENT AUTHOR (first-name,last-name)>\n\
   <!ELEMENT first-name (#PCDATA)>\n\
   <!ELEMENT last-name (#PCDATA)>"

let book_dtd = Gql_dtd.Parse.parse_subset ~root_hint:"bib" book_dtd_text

(** A bibliography with [n] books.  [defect_rate] (0.0-1.0) makes that
    fraction of books violate the DTD in a random way (missing price,
    misplaced title, author without last name) — used by E2. *)
let bibliography ?(seed = 42) ?(defect_rate = 0.0) n : doc =
  let rng = Prng.create seed in
  let author () =
    elt "AUTHOR"
      [
        elt "first-name" [ text (Prng.pick rng first_names) ];
        elt "last-name" [ text (Prng.pick rng last_names) ];
      ]
  in
  let book i =
    let defective = Prng.float rng < defect_rate in
    let isbn = Printf.sprintf "89-%05d-%d" i (Prng.int rng 10) in
    let title_el =
      if Prng.int rng 10 < 8 then [ elt "title" [ text (title rng) ] ] else []
    in
    let price_el =
      [ elt "price" [ text (Printf.sprintf "%d.%02d" (10 + Prng.int rng 90) (Prng.int rng 100)) ] ]
    in
    let authors = List.init (Prng.int rng 4) (fun _ -> author ()) in
    if not defective then
      elt ~attrs:[ ("isbn", isbn) ] "BOOK" (title_el @ price_el @ authors)
    else
      match Prng.int rng 3 with
      | 0 ->
        (* missing price *)
        elt ~attrs:[ ("isbn", isbn) ] "BOOK" (title_el @ authors)
      | 1 ->
        (* title after price: an ordered-content violation *)
        elt ~attrs:[ ("isbn", isbn) ] "BOOK"
          (price_el @ title_el @ authors)
      | _ ->
        (* author missing the last name *)
        elt ~attrs:[ ("isbn", isbn) ] "BOOK"
          (title_el @ price_el
          @ [ elt "AUTHOR" [ elt "first-name" [ text (Prng.pick rng first_names) ] ] ])
  in
  doc (element "bib" (List.map book (List.init n Fun.id)))

(* --- greengrocer ------------------------------------------------------ *)

let vegetables =
  [| "cabbage"; "carrot"; "leek"; "potato"; "onion"; "spinach" |]

let fruits = [| "cherry"; "apple"; "pear"; "plum"; "grape"; "peach" |]

let vendor_names =
  [| "DeRuiter"; "Lafayette"; "VanDam"; "Miller"; "VanHouten"; "Smith";
     "Garcia"; "Rossi" |]

let countries = [| "holland"; "france"; "germany"; "italy"; "spain" |]

(** The running greengrocer database: [n] products, [v] vendors; product
    [vendor] children join vendor [name]s by value, as in the Xcerpt
    examples. *)
let greengrocer ?(seed = 7) ?(vendors = 5) n : doc =
  let rng = Prng.create seed in
  let vendors = max 1 (min vendors (Array.length vendor_names)) in
  let vendor i =
    elt "vendor"
      [
        elt "country" [ text countries.(i mod Array.length countries) ];
        elt "name" [ text vendor_names.(i) ];
      ]
  in
  let product _ =
    let is_fruit = Prng.bool rng in
    let name = Prng.pick rng (if is_fruit then fruits else vegetables) in
    elt "product"
      [
        elt "type" [ text (if is_fruit then "fruit" else "vegetable") ];
        elt "name" [ text name ];
        elt "price"
          [
            elt "unit" [ text (if Prng.bool rng then "kilo" else "piece") ];
            elt "value" [ text (Printf.sprintf "%d.%02d" (Prng.int rng 5) (Prng.int rng 100)) ];
          ];
        elt "vendor" [ text vendor_names.(Prng.int rng vendors) ];
      ]
  in
  doc
    (element "greengrocer"
       [
         Element (element "products" (List.init n product));
         Element
           (element "vendors" (List.init vendors vendor));
       ])

(* --- people ----------------------------------------------------------- *)

(** The PERSON corpus of the aggregation figure: [n] persons, a fraction
    [with_addr] of which carry a FULLADDR.  Persons share employers so
    join queries have real fan-in. *)
let people ?(seed = 11) ?(with_addr = 0.7) ?(companies = 8) n : doc =
  let rng = Prng.create seed in
  let company i = Printf.sprintf "company-%d" (i mod companies) in
  let person i =
    let fn = Prng.pick rng first_names and ln = Prng.pick rng last_names in
    let base =
      [
        elt "firstname" [ text fn ];
        elt "lastname" [ text ln ];
        elt "age" [ text (string_of_int (16 + Prng.int rng 60)) ];
        elt "salary" [ text (string_of_int (15000 + (Prng.int rng 40) * 1000)) ];
        elt "employer" [ text (company i) ];
      ]
    in
    let addr =
      if Prng.float rng < with_addr then
        [
          elt "FULLADDR"
            [
              elt "street" [ text (Printf.sprintf "%d %s street" (1 + Prng.int rng 200) (Prng.pick rng words)) ];
              elt "city" [ text (Prng.pick rng [| "Milano"; "Paris"; "Munich"; "Stanford"; "Delft" |]) ];
            ];
        ]
      else []
    in
    elt ~attrs:[ ("id", Printf.sprintf "p%d" i) ] "PERSON" (base @ addr)
  in
  doc (element "people" (List.init n person))

(* --- hyperdocuments ---------------------------------------------------- *)

(** A hyperdocument graph in the GraphLog style: [n] Document entities;
    ~[idx_fraction] of them are index documents pointing to [fanout]
    children via [index] edges; the rest receive random [link] edges.
    Returned directly as a data graph (these databases are graphs, not
    documents). *)
let hyperdocs ?(seed = 3) ?(fanout = 4) ?(link_factor = 2) n : Gql_data.Graph.t =
  let open Gql_data in
  let rng = Prng.create seed in
  let g = Graph.create () in
  let docs =
    Array.init n (fun i ->
        let d = Graph.add_complex g "Document" in
        let t = Graph.add_atom g (Value.string (Printf.sprintf "doc-%d" i)) in
        Graph.link g ~src:d ~dst:t (Graph.attr_edge "title");
        d)
  in
  if n > 0 then Graph.add_root g docs.(0);
  (* index tree: document i indexes children fanout*i+1 .. fanout*i+fanout *)
  Array.iteri
    (fun i d ->
      for k = 1 to fanout do
        let j = (fanout * i) + k in
        if j < n then Graph.link g ~src:d ~dst:docs.(j) (Graph.rel_edge "index")
      done)
    docs;
  (* random cross links *)
  for _ = 1 to link_factor * n do
    let a = Prng.int rng n and b = Prng.int rng n in
    if a <> b then Graph.link g ~src:docs.(a) ~dst:docs.(b) (Graph.rel_edge "link")
  done;
  g

(** The restaurant database of the WG-Log figure: restaurants in cities,
    a fraction of which offer menus. *)
let restaurants ?(seed = 5) ?(menu_fraction = 0.6) n : Gql_data.Graph.t =
  let open Gql_data in
  let rng = Prng.create seed in
  let g = Graph.create () in
  let cities =
    Array.map
      (fun name ->
        let c = Graph.add_complex g "City" in
        let v = Graph.add_atom g (Value.string name) in
        Graph.link g ~src:c ~dst:v (Graph.attr_edge "name");
        c)
      [| "Milano"; "Como"; "Torino"; "Roma" |]
  in
  for i = 0 to n - 1 do
    let r = Graph.add_complex g "Restaurant" in
    if i = 0 then Graph.add_root g r;
    let nm = Graph.add_atom g (Value.string (Printf.sprintf "Trattoria %d" i)) in
    Graph.link g ~src:r ~dst:nm (Graph.attr_edge "name");
    Graph.link g ~src:r ~dst:(Prng.pick rng cities) (Graph.rel_edge "located-in");
    if Prng.float rng < menu_fraction then begin
      let menus = 1 + Prng.int rng 3 in
      for m = 1 to menus do
        let menu = Graph.add_complex g "Menu" in
        let mn = Graph.add_atom g (Value.string (Printf.sprintf "menu-%d-%d" i m)) in
        let mp =
          Graph.add_atom g (Value.float (10.0 +. (Prng.float rng *. 40.0)))
        in
        Graph.link g ~src:menu ~dst:mn (Graph.attr_edge "name");
        Graph.link g ~src:menu ~dst:mp (Graph.attr_edge "price");
        Graph.link g ~src:r ~dst:menu (Graph.rel_edge "offers")
      done
    end
  done;
  g

(* --- labelled entity graphs -------------------------------------------- *)

(** A flat entity graph stressing label/value selectivity: [labels]
    distinct entity types ["L0" .. "L{labels-1}"] with [per_label]
    instances each, every instance carrying a unique [key] attribute
    ["k-<i>"], and [degree] random [rel] edges from each instance of
    layer [j] into layer [j+1] (wrapping).  Scan-based matching sees
    [labels * per_label * 2] nodes per candidate pass; indexed matching
    sees one label bucket — this is the A/B graph of the benchmark
    trajectory. *)
let labelled_graph ?(seed = 17) ?(labels = 100) ?(per_label = 500)
    ?(degree = 3) () : Gql_data.Graph.t =
  let open Gql_data in
  let rng = Prng.create seed in
  let g = Graph.create () in
  let nodes = Array.make_matrix labels per_label (-1) in
  for l = 0 to labels - 1 do
    let lbl = Printf.sprintf "L%d" l in
    for i = 0 to per_label - 1 do
      let e = Graph.add_complex g lbl in
      let k =
        Graph.add_atom g (Value.string (Printf.sprintf "k-%d" ((l * per_label) + i)))
      in
      Graph.link g ~src:e ~dst:k (Graph.attr_edge "key");
      nodes.(l).(i) <- e
    done
  done;
  if labels > 0 && per_label > 0 then Graph.add_root g nodes.(0).(0);
  for l = 0 to labels - 1 do
    let next = (l + 1) mod labels in
    for i = 0 to per_label - 1 do
      for _ = 1 to degree do
        let j = Prng.int rng per_label in
        Graph.link g ~src:nodes.(l).(i) ~dst:nodes.(next).(j)
          (Graph.rel_edge "rel")
      done
    done
  done;
  g

(* --- million-node parallel-scaling fixtures ----------------------------- *)

(* The E13v2 graphs: entity graphs big enough (>= 1M nodes) that domain-
   parallel matching has real work to split, each stressing a different
   shape of the chunk scheduler.  All three keep the *first choice
   point* small — the fail-first scorer starts from the rarest label —
   so the per-seed completion work, not the seed count, carries the
   cost; that is exactly the shape where per-chunk setup used to
   dominate.  No atoms are attached: every node is a labelled entity,
   so node count == entity count. *)

(** Wide: [hubs] "Hub" entities each owning ~[n/hubs] of the [n] "Item"
    entities via a [rel] edge.  Matching [Hub -rel-> Item] binds a hub
    first (small candidate set) and fans out over its members — many
    equal-sized seeds, the friendly case for chunking. *)
let wide_graph ?(seed = 19) ?(hubs = 1024) n : Gql_data.Graph.t =
  let open Gql_data in
  let rng = Prng.create seed in
  let g = Graph.create () in
  let hubs = max 1 hubs in
  let hub_nodes = Array.init hubs (fun _ -> Graph.add_complex g "Hub") in
  Graph.add_root g hub_nodes.(0);
  for _ = 1 to n do
    let item = Graph.add_complex g "Item" in
    Graph.link g ~src:hub_nodes.(Prng.int rng hubs) ~dst:item
      (Graph.rel_edge "rel")
  done;
  g

(** Deep: [chains] linked lists of "Cell" entities (heads labelled
    "Head"), [n/chains] long, threaded by [next] edges.  Matching
    [Head -next+-> Cell] walks one whole chain per seed — few seeds,
    each hiding a long regular-path traversal. *)
let deep_graph ?(seed = 23) ?(chains = 2048) n : Gql_data.Graph.t =
  let open Gql_data in
  ignore seed;
  let g = Graph.create () in
  let chains = max 1 chains in
  let depth = max 2 (n / chains) in
  for c = 0 to chains - 1 do
    let head = Graph.add_complex g "Head" in
    if c = 0 then Graph.add_root g head;
    let prev = ref head in
    for _ = 2 to depth do
      let cell = Graph.add_complex g "Cell" in
      Graph.link g ~src:!prev ~dst:cell (Graph.rel_edge "next");
      prev := cell
    done
  done;
  g

(** Skewed: [groups] "Group" entities whose "Member" populations follow
    a harmonic distribution — group 0 owns ~[n/H(groups)] members,
    group [i] a [1/(i+1)] share — connected by [member] edges.  Seed
    costs differ by orders of magnitude, so static chunking loses and
    the adaptive granularity + work stealing have to earn their keep. *)
let skewed_graph ?(seed = 29) ?(groups = 512) n : Gql_data.Graph.t =
  let open Gql_data in
  let g = Graph.create () in
  ignore seed;
  let groups = max 1 groups in
  let harmonic =
    let h = ref 0.0 in
    for i = 1 to groups do
      h := !h +. (1.0 /. float_of_int i)
    done;
    !h
  in
  let group_nodes = Array.init groups (fun _ -> Graph.add_complex g "Group") in
  Graph.add_root g group_nodes.(0);
  Array.iteri
    (fun i grp ->
      let share =
        int_of_float (float_of_int n /. (float_of_int (i + 1) *. harmonic))
      in
      for _ = 1 to max 1 share do
        let m = Graph.add_complex g "Member" in
        Graph.link g ~src:grp ~dst:m (Graph.rel_edge "member")
      done)
    group_nodes;
  g

(* --- random trees ------------------------------------------------------ *)

let tag_pool = [| "a"; "b"; "c"; "d"; "e"; "item"; "entry"; "node" |]

(** Random tree with approximately [n] nodes, mean [fanout], tags from a
    small pool, and [ref_density] ID/IDREF pairs per node (revealing
    graph structure).  Used by the scalability sweeps. *)
let random_tree ?(seed = 13) ?(fanout = 4) ?(ref_density = 0.05) n : doc =
  let rng = Prng.create seed in
  let counter = ref 0 in
  let rec build budget depth =
    incr counter;
    let me = !counter in
    let attrs = [ ("id", Printf.sprintf "n%d" me) ] in
    let attrs =
      if Prng.float rng < ref_density && me > 1 then
        ("ref", Printf.sprintf "n%d" (1 + Prng.int rng (me - 1))) :: attrs
      else attrs
    in
    let children =
      if budget <= 1 || depth > 14 then
        [ Text (Printf.sprintf "%d" (Prng.int rng 1000)) ]
      else begin
        let k = 1 + Prng.int rng fanout in
        let share = max 1 ((budget - 1) / k) in
        List.init k (fun _ -> Element (build share (depth + 1)))
      end
    in
    element ~attrs (Prng.pick rng tag_pool) children
  in
  doc (build n 0)

(** Parse + encode helpers used by benches. *)
let to_graph (d : doc) : Gql_data.Graph.t = fst (Gql_data.Codec.encode d)

let to_xpath_index (d : doc) : Gql_xpath.Index.t = Gql_xpath.Index.build d
