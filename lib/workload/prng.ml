(** Deterministic PRNG (splitmix64).

    Benchmarks and property corpora must be reproducible across runs and
    machines, so nothing in the workload generators touches [Random];
    every generator takes a seed and derives its stream from it. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform int in [0, bound).

    Rejection sampling over 62-bit draws: a plain [Int64.rem] of the
    raw state is biased towards small residues whenever [bound] does
    not divide the draw range (up to ~2^-62 per value, but measurable
    for large bounds).  Draws in the tail [lim, 2^62) are redrawn so
    every residue class is equally likely.  Note this consumes a
    variable number of raw draws, so streams differ from the pre-fix
    generator even when no rejection occurs (62- vs 63-bit window). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  let b = Int64.of_int bound in
  let range = 0x4000_0000_0000_0000L (* 2^62: keeps every value positive *) in
  let lim = Int64.sub range (Int64.rem range b) in
  let rec draw () =
    let r = Int64.shift_right_logical (next_int64 t) 2 in
    if r >= lim then draw () else Int64.to_int (Int64.rem r b)
  in
  draw ()

let float t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
  /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr = arr.(int t (Array.length arr))

let pick_list t l = List.nth l (int t (List.length l))

(** Shuffle a copy of the array. *)
let shuffle t arr =
  let a = Array.copy arr in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a
