(** The public facade: everything a downstream user needs in one module.

    {[
      let db = Gql.load_xml_string xml in
      let result = Gql.run_xmlgl_text db {|xmlgl ... |} in
      print_string (Gql.to_xml_string result)
    ]}

    A {!db} couples the semi-structured data graph (what the visual
    languages query) with the original document and a lazily built XPath
    index (the navigational baseline), so the same loaded data serves
    every engine in the comparison. *)

type db = {
  graph : Gql_data.Graph.t;  (** the data graph both visual languages query *)
  document : Gql_xml.Tree.doc option;  (** original document, if loaded from XML *)
  dtd : Gql_dtd.Ast.t option;  (** DTD, external or from the DOCTYPE *)
  xpath_index : Gql_xpath.Index.t Lazy.t;
      (** flattened index for the navigational baseline; forcing it on a
          pure graph database raises {!Error} *)
  gindex : Gql_data.Index.cache;
      (** frozen graph index shared by every engine; rebuilt on demand
          when the graph has grown (e.g. after a WG-Log run) *)
}

exception Error of string
(** Every facade failure (parse errors, missing document forms, ...)
    surfaces as [Error message]. *)

(** {1 Loading} *)

val of_document : ?dtd:Gql_dtd.Ast.t -> Gql_xml.Tree.doc -> db
(** Encode a parsed document.  Without [dtd], the DOCTYPE internal subset
    (if any) provides ID/IDREF typing for reference resolution. *)

val load_xml_string : ?dtd:Gql_dtd.Ast.t -> string -> db
(** Parse and encode XML text.  @raise Error on malformed input. *)

val load_xml_file : ?dtd:Gql_dtd.Ast.t -> string -> db

val of_graph : Gql_data.Graph.t -> db
(** Wrap an entity database that never was XML (e.g. the WG-Log
    restaurant base).  XPath is unavailable on such databases. *)

val of_snapshot : Gql_data.Graph.t -> Gql_data.Index.t -> db
(** Wrap a loaded snapshot pair ({!Gql_data.Store.load}) with the index
    cache pre-filled, so the first query runs on the loaded flat planes
    instead of re-freezing.  XPath is unavailable. *)

val load_snapshot_file : string -> db
(** Load a snapshot file saved with [gql snapshot save].
    @raise Gql_data.Store.Invalid_snapshot on corrupt, truncated or
    wrong-version files. *)

val index : db -> Gql_data.Index.t
(** The frozen {!Gql_data.Index} over [db.graph], built on first use and
    cached until the graph grows. *)

val language_of_source : string -> [ `Wglog | `Xmlgl | `Match | `Unknown ]
(** Which front-end a query source selects: the first word of its first
    non-empty, non-comment ([#]) line, compared case-insensitively and
    as an exact word — so [WGLOG] selects WG-Log but [wglogx] selects
    nothing, and a WG-Log program mentioning "MATCH" in a label is not
    misclassified.  Shared by the CLI and the query service. *)

(** {1 XML-GL} *)

val parse_xmlgl : string -> Gql_xmlgl.Ast.program
(** Parse the textual syntax (see [lib/lang/xmlgl_text.ml] for the
    grammar).  @raise Error with position information on bad input. *)

val run_xmlgl : ?domains:int -> db -> Gql_xmlgl.Ast.program -> Gql_xml.Tree.element
(** Evaluate a program: every rule's matches are constructed and the
    results collected under the program's result root.  [domains] fans
    the embedding search out over OCaml domains with byte-identical
    results (default {!Gql_graph.Par.default_domains}). *)

val run_xmlgl_text : ?domains:int -> db -> string -> Gql_xml.Tree.element

val xmlgl_bindings :
  db -> Gql_xmlgl.Ast.program -> Gql_xmlgl.Matching.binding list
(** Bindings of the first rule's query part (inspection / testing). *)

val explain_xmlgl :
  ?strategy:Gql_algebra.Planner.strategy ->
  db ->
  Gql_xmlgl.Ast.program ->
  string
(** EXPLAIN: the physical plan the algebra executes for the first rule,
    cost-annotated ([`Cost] by default). *)

(** {1 WG-Log} *)

val parse_wglog : ?schema:Gql_wglog.Schema.t -> string -> Gql_wglog.Ast.program

val run_wglog :
  ?strategy:[ `Naive | `Semi_naive ] ->
  ?domains:int ->
  db ->
  Gql_wglog.Ast.program ->
  Gql_wglog.Eval.stats
(** Run a program to its deductive fixpoint.  Mutates [db.graph], as the
    semantics prescribe; idempotent across runs.  [domains] parallelises
    the matching side of each round; construction stays sequential. *)

val run_wglog_text :
  ?schema:Gql_wglog.Schema.t ->
  ?strategy:[ `Naive | `Semi_naive ] ->
  ?domains:int ->
  db ->
  string ->
  Gql_wglog.Eval.stats

val wglog_goal : db -> Gql_wglog.Ast.rule -> int array list
(** Evaluate a pure query rule; returns its embeddings without deriving
    anything. *)

val explain_wglog :
  ?strategy:Gql_algebra.Planner.strategy ->
  db ->
  Gql_wglog.Ast.program ->
  string
(** EXPLAIN for the first rule's query part via the algebra route,
    cost-annotated ([`Cost] by default).  The fixpoint evaluator itself
    stays non-algebraic; this shows the join order of one rule. *)

(** {1 MATCH — the textual GPML-style front-end} *)

val parse_match : string -> Gql_match.Ast.query
(** Parse a textual [MATCH ... RETURN ...] query (see [lib/match] for
    the grammar).  @raise Error with line/column positions on bad
    input. *)

val run_match : ?domains:int -> db -> Gql_match.Ast.query -> string * int
(** Evaluate through the algebra (greedy plan, index provider): returns
    the canonical result body — header line plus sorted binding rows,
    tab-separated — and the row count.  @raise Error on compile errors
    (unknown variables etc.). *)

val run_match_text : ?domains:int -> db -> string -> string * int

val match_bindings : db -> Gql_match.Ast.query -> int array list
(** Raw embeddings via the direct matcher (inspection / testing). *)

val explain_match :
  ?strategy:Gql_algebra.Planner.strategy -> db -> Gql_match.Ast.query -> string
(** EXPLAIN: the physical plan the algebra would execute,
    cost-annotated ([`Cost] by default). *)

(** {1 The navigational baseline} *)

val xpath_select : db -> string -> Gql_xml.Tree.node list
(** Evaluate an XPath expression to a node list, materialised as trees.
    @raise Error when the database has no document form. *)

val xpath_value : db -> string -> string
(** Evaluate to a scalar (strings/numbers/booleans printed; node-sets
    summarised). *)

(** {1 Schemas} *)

val validate_dtd : db -> Gql_dtd.Validate.violation list
(** @raise Error when the database carries no DTD or no document. *)

val validate_xmlgl_schema :
  db -> Gql_xmlgl.Schema.t -> Gql_xmlgl.Schema.violation list

(** {1 Rendering} *)

val to_xml_string : Gql_xml.Tree.element -> string
(** Pretty-printed XML. *)

val rule_diagram_xmlgl :
  ?title:string -> Gql_xmlgl.Ast.rule -> Gql_visual.Diagram.t
(** The rule as the paper draws it: red query part, green construction
    part, dashed binding lines. *)

val rule_diagram_wglog :
  ?title:string -> Gql_wglog.Ast.rule -> Gql_visual.Diagram.t

val save_svg : string -> Gql_visual.Diagram.t -> unit
(** Lay out (layered) and write a standalone SVG file. *)

val render_ascii : Gql_visual.Diagram.t -> string
(** Terminal rendering of a diagram. *)

val data_diagram : ?max_nodes:int -> db -> Gql_visual.Diagram.t
(** A (truncated) picture of the database itself. *)

(** {1 Introspection} *)

val stats : db -> int * int
(** (nodes, edges) of the data graph. *)
