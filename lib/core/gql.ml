(** The public facade: everything a downstream user needs in one module.

    {[
      let db = Gql.load_xml_string xml in
      let result = Gql.run_xmlgl_text db {|xmlgl ... |} in
      print_string (Gql.to_xml_string result);
      Gql.save_rule_svg "rule.svg" program
    ]}

    A {!db} couples the semi-structured data graph (what the visual
    languages query) with the original document and a lazily built XPath
    index (the navigational baseline), so the same loaded data serves
    every engine in the comparison. *)

type db = {
  graph : Gql_data.Graph.t;
  document : Gql_xml.Tree.doc option;
  dtd : Gql_dtd.Ast.t option;
  xpath_index : Gql_xpath.Index.t Lazy.t;
  gindex : Gql_data.Index.cache;
      (** frozen graph index shared by every engine; rebuilt on demand
          when the graph has grown (e.g. after a WG-Log run) *)
}

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

let of_document ?dtd (document : Gql_xml.Tree.doc) : db =
  let dtd =
    match dtd with
    | Some _ -> dtd
    | None -> Gql_dtd.Parse.of_doc document
  in
  let graph, _ = Gql_data.Codec.encode ?dtd document in
  {
    graph;
    document = Some document;
    dtd;
    xpath_index = lazy (Gql_xpath.Index.build document);
    gindex = Gql_data.Index.cache ();
  }

let load_xml_string ?dtd (src : string) : db =
  match Gql_xml.Parser.parse_document_result src with
  | Ok document -> of_document ?dtd document
  | Error msg -> fail "XML parse error: %s" msg

let load_xml_file ?dtd path : db =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  load_xml_string ?dtd src

(** Wrap an existing data graph (entity databases that never were XML,
    e.g. the WG-Log restaurant base). *)
let of_graph (graph : Gql_data.Graph.t) : db =
  {
    graph;
    document = None;
    dtd = None;
    xpath_index =
      lazy (fail "this database has no document form; XPath unavailable");
    gindex = Gql_data.Index.cache ();
  }

(** Wrap a loaded snapshot ({!Gql_data.Store.load}) without rebuilding
    anything: the index cache starts filled, so the first query runs on
    the loaded flat planes instead of triggering a re-freeze
    ([Index.refresh] sees the same graph at the same version). *)
let of_snapshot (graph : Gql_data.Graph.t) (index : Gql_data.Index.t) : db =
  let db = of_graph graph in
  db.gindex.Gql_data.Index.cached <- Some index;
  db

(** Load a snapshot file saved with [gql snapshot save] /
    {!Gql_data.Store.save}.  Raises [Gql_data.Store.Invalid_snapshot] on
    corrupt, truncated or wrong-version files. *)
let load_snapshot_file path : db =
  let graph, index = Gql_data.Store.load ~path in
  of_snapshot graph index

(** Which front-end a query source selects: the first word of the first
    non-empty, non-comment line, compared case-insensitively and as an
    exact word — [WGLOG] parses, [wglogx] does not.  [MATCH] selects
    the textual GPML-style front-end; a WG-Log program whose *labels*
    mention "match" is unaffected because its first word is [wglog]. *)
let language_of_source (source : string) :
    [ `Wglog | `Xmlgl | `Match | `Unknown ] =
  let header =
    String.split_on_char '\n' source
    |> List.map String.trim
    |> List.find_opt (fun l -> l <> "" && l.[0] <> '#')
  in
  match header with
  | None -> `Unknown
  | Some line -> (
    let is_blank c = c = ' ' || c = '\t' || c = '\r' in
    let stop = ref (String.length line) in
    String.iteri (fun i c -> if is_blank c && i < !stop then stop := i) line;
    let first_word = String.sub line 0 !stop in
    match String.lowercase_ascii first_word with
    | "wglog" -> `Wglog
    | "xmlgl" -> `Xmlgl
    | "match" -> `Match
    | _ -> `Unknown)

(* ------------------------------------------------------------------ *)
(* XML-GL                                                              *)
(* ------------------------------------------------------------------ *)

let parse_xmlgl (src : string) : Gql_xmlgl.Ast.program =
  match Gql_lang.Xmlgl_text.parse_program_result src with
  | Ok p -> p
  | Error msg -> fail "XML-GL parse error: %s" msg

(** The current frozen index for [db.graph] (cached across calls). *)
let index (db : db) : Gql_data.Index.t =
  Gql_data.Index.refresh db.gindex db.graph

let run_xmlgl ?domains (db : db) (p : Gql_xmlgl.Ast.program) :
    Gql_xml.Tree.element =
  Gql_xmlgl.Engine.run_program ~index:(index db) ?domains db.graph p

let run_xmlgl_text ?domains (db : db) (src : string) : Gql_xml.Tree.element =
  run_xmlgl ?domains db (parse_xmlgl src)

(** Bindings of the first rule's query part (inspection / testing). *)
let xmlgl_bindings (db : db) (p : Gql_xmlgl.Ast.program) =
  match p.Gql_xmlgl.Ast.rules with
  | [] -> []
  | r :: _ ->
    Gql_xmlgl.Engine.query_bindings ~index:(index db) db.graph
      r.Gql_xmlgl.Ast.query

(** EXPLAIN for the first rule, via the algebra planner. *)
let explain_xmlgl ?strategy (db : db) (p : Gql_xmlgl.Ast.program) : string =
  match p.Gql_xmlgl.Ast.rules with
  | [] -> "(no rules)"
  | r :: _ ->
    Gql_algebra.Exec.explain_xmlgl ?strategy ~index:(index db) db.graph
      r.Gql_xmlgl.Ast.query

(* ------------------------------------------------------------------ *)
(* WG-Log                                                              *)
(* ------------------------------------------------------------------ *)

let parse_wglog ?schema (src : string) : Gql_wglog.Ast.program =
  match Gql_lang.Wglog_text.parse_program_result ?schema src with
  | Ok p -> p
  | Error msg -> fail "WG-Log parse error: %s" msg

(** Run a WG-Log program to fixpoint (mutates the database graph, as the
    deductive semantics prescribes). *)
let run_wglog ?strategy ?domains (db : db) (p : Gql_wglog.Ast.program) :
    Gql_wglog.Eval.stats =
  Gql_wglog.Eval.run ?strategy ?domains db.graph p

let run_wglog_text ?schema ?strategy ?domains (db : db) (src : string) :
    Gql_wglog.Eval.stats =
  run_wglog ?strategy ?domains db (parse_wglog ?schema src)

let wglog_goal (db : db) (r : Gql_wglog.Ast.rule) =
  Gql_wglog.Eval.goal ~index:(index db) db.graph r

(** EXPLAIN for the first rule's query part, via the algebra planner
    (the fixpoint itself is not algebraic; this shows its join order). *)
let explain_wglog ?strategy (db : db) (p : Gql_wglog.Ast.program) : string =
  match p.Gql_wglog.Ast.rules with
  | [] -> "(no rules)"
  | r :: _ -> Gql_algebra.Exec.explain_wglog ?strategy ~index:(index db) db.graph r

(* ------------------------------------------------------------------ *)
(* MATCH (textual GPML-style front-end)                                *)
(* ------------------------------------------------------------------ *)

let parse_match (src : string) : Gql_match.Ast.query =
  match Gql_match.Parse.parse_result src with
  | Ok q -> q
  | Error msg -> fail "MATCH parse error: %s" msg

let run_match ?domains (db : db) (q : Gql_match.Ast.query) : string * int =
  match Gql_match.Eval.run ~index:(index db) ?domains db.graph q with
  | r -> r
  | exception Gql_match.Compile.Error msg -> fail "MATCH compile error: %s" msg

let run_match_text ?domains (db : db) (src : string) : string * int =
  run_match ?domains db (parse_match src)

let match_bindings (db : db) (q : Gql_match.Ast.query) : int array list =
  match
    Gql_match.Eval.bindings ~index:(index db) db.graph
      (Gql_match.Compile.compile q)
  with
  | r -> r
  | exception Gql_match.Compile.Error msg -> fail "MATCH compile error: %s" msg

let explain_match ?strategy (db : db) (q : Gql_match.Ast.query) : string =
  match Gql_match.Eval.explain ?strategy ~index:(index db) db.graph q with
  | r -> r
  | exception Gql_match.Compile.Error msg -> fail "MATCH compile error: %s" msg

(* ------------------------------------------------------------------ *)
(* XPath baseline                                                      *)
(* ------------------------------------------------------------------ *)

let xpath_select (db : db) (expr : string) : Gql_xml.Tree.node list =
  let idx = Lazy.force db.xpath_index in
  List.map (Gql_xpath.Index.to_tree idx) (Gql_xpath.Eval.select_string idx expr)

let xpath_value (db : db) (expr : string) : string =
  let idx = Lazy.force db.xpath_index in
  match Gql_xpath.Eval.eval_string idx expr with
  | Gql_xpath.Eval.Str s -> s
  | Gql_xpath.Eval.Num f -> Printf.sprintf "%g" f
  | Gql_xpath.Eval.Bool b -> string_of_bool b
  | Gql_xpath.Eval.Nodeset ns -> Printf.sprintf "node-set(%d)" (List.length ns)

(* ------------------------------------------------------------------ *)
(* Schemas                                                             *)
(* ------------------------------------------------------------------ *)

let validate_dtd (db : db) : Gql_dtd.Validate.violation list =
  match db.dtd, db.document with
  | Some dtd, Some document -> Gql_dtd.Validate.validate dtd document
  | None, _ -> fail "database has no DTD"
  | _, None -> fail "database has no document form"

let validate_xmlgl_schema (db : db) (s : Gql_xmlgl.Schema.t) =
  Gql_xmlgl.Schema.validate s db.graph

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let to_xml_string = Gql_xml.Printer.element_to_string_pretty

let rule_diagram_xmlgl ?title (r : Gql_xmlgl.Ast.rule) =
  Gql_visual.Builders.of_xmlgl_rule ?title r

let rule_diagram_wglog ?title (r : Gql_wglog.Ast.rule) =
  Gql_visual.Builders.of_wglog_rule ?title r

let save_svg path diagram = Gql_visual.Svg.write_file path diagram

let render_ascii diagram = Gql_visual.Ascii.render_auto diagram

let data_diagram ?max_nodes (db : db) =
  Gql_visual.Builders.of_data ?max_nodes db.graph

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let stats (db : db) =
  ( Gql_data.Graph.n_nodes db.graph,
    Gql_data.Graph.n_edges db.graph )
