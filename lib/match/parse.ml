(** Parser for the textual [MATCH] language.

    The grammar is deliberately line-oriented: every clause occupies
    exactly one line, blank lines and [#] comment lines are skipped,
    the first clause must be [MATCH] (that is what
    {!Gql_core.Gql.language_of_source} sniffs on) and [RETURN] must be
    the last.  Errors carry 1-based line and column positions in the
    same [%s at ...] shape as {!Gql_lang.Label_re.parse}. *)

exception Error of string
(** Raised with a human-readable message, ["... at line L, column C"]. *)

type state = { line : string; lineno : int; mutable pos : int }

let err st fmt =
  Printf.ksprintf
    (fun msg ->
      raise
        (Error
           (Printf.sprintf "%s at line %d, column %d" msg st.lineno
              (st.pos + 1))))
    fmt

let peek st = if st.pos < String.length st.line then Some st.line.[st.pos] else None
let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\r') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ()

let eat st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> err st "expected '%c' but found '%c'" c c'
  | None -> err st "expected '%c' but the line ended" c

(* Variable names are identifiers; labels additionally allow '-' so XML
   element names like [last-name] work unquoted. *)
let is_word_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_word_char c = is_word_start c || (c >= '0' && c <= '9')
let is_label_char c = is_word_char c || c = '-'

let take st what good =
  skip_ws st;
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when good c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then err st "expected %s" what
  else String.sub st.line start (st.pos - start)

let word st = take st "a name" is_word_char
let label st = take st "a label" is_label_char

(* A keyword at the cursor, lowercased; the cursor is left after it. *)
let keyword st = String.lowercase_ascii (word st)

let expect_keyword st kw =
  skip_ws st;
  let col = st.pos in
  let w = keyword st in
  if w <> kw then (
    st.pos <- col;
    err st "expected '%s' but found '%s'" (String.uppercase_ascii kw) w)

let at_end st =
  skip_ws st;
  peek st = None

let end_line st = if not (at_end st) then err st "trailing input"

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)

let parse_pnode st : Ast.pnode =
  eat st '(';
  skip_ws st;
  let v =
    match peek st with Some c when is_word_start c -> Some (word st) | _ -> None
  in
  skip_ws st;
  let l =
    match peek st with
    | Some ':' ->
      advance st;
      Some (label st)
    | _ -> None
  in
  eat st ')';
  { Ast.n_var = v; n_label = l }

(* The bracket body of an edge pattern: [e], [:spec], [e:spec] or
   nothing.  A spec made only of label characters is a single-arc name
   test; anything else must parse as a Label_re path expression, whose
   trimmed source text we keep verbatim for printing. *)
let parse_bracket st : string option * Ast.espec =
  eat st '[';
  skip_ws st;
  let v =
    match peek st with Some c when is_word_start c -> Some (word st) | _ -> None
  in
  skip_ws st;
  let spec =
    match peek st with
    | Some ':' ->
      advance st;
      skip_ws st;
      let start = st.pos in
      let rec go () =
        match peek st with
        | Some ']' | None -> ()
        | Some _ ->
          advance st;
          go ()
      in
      go ();
      let raw = String.trim (String.sub st.line start (st.pos - start)) in
      if raw = "" then (
        st.pos <- start;
        err st "expected an edge label or path expression")
      else if String.for_all is_label_char raw then Ast.Label raw
      else (
        match Gql_lang.Label_re.parse raw with
        | _ -> Ast.Regex raw
        | exception Gql_lang.Label_re.Error msg ->
          st.pos <- start;
          err st "bad path expression (%s)" msg)
    | _ -> Ast.Any
  in
  eat st ']';
  (v, spec)

let parse_pedge st : Ast.pedge option =
  skip_ws st;
  match peek st with
  | Some '-' ->
    advance st;
    let v, spec = parse_bracket st in
    eat st '-';
    eat st '>';
    Some { Ast.e_var = v; e_spec = spec; e_dir = Ast.Out }
  | Some '<' ->
    advance st;
    eat st '-';
    let v, spec = parse_bracket st in
    eat st '-';
    Some { Ast.e_var = v; e_spec = spec; e_dir = Ast.In }
  | _ -> None

let parse_chain st : Ast.chain =
  let head = parse_pnode st in
  let rec hops acc =
    match parse_pedge st with
    | None -> List.rev acc
    | Some e ->
      let n = parse_pnode st in
      hops ((e, n) :: acc)
  in
  { Ast.head; hops = hops [] }

(* ------------------------------------------------------------------ *)
(* WHERE                                                               *)

let parse_term st : Ast.term =
  skip_ws st;
  match peek st with
  | Some '"' ->
    advance st;
    let start = st.pos in
    let rec go () =
      match peek st with
      | Some '"' -> ()
      | Some _ ->
        advance st;
        go ()
      | None -> err st "unterminated string literal"
    in
    go ();
    let s = String.sub st.line start (st.pos - start) in
    advance st;
    Ast.Lit (Gql_data.Value.String s)
  | Some c when c = '-' || (c >= '0' && c <= '9') ->
    let start = st.pos in
    if c = '-' then advance st;
    let rec go () =
      match peek st with
      | Some ('0' .. '9' | '.') ->
        advance st;
        go ()
      | _ -> ()
    in
    go ();
    let raw = String.sub st.line start (st.pos - start) in
    if String.contains raw '.' then (
      match float_of_string_opt raw with
      | Some f -> Ast.Lit (Gql_data.Value.Float f)
      | None ->
        st.pos <- start;
        err st "bad number %S" raw)
    else (
      match int_of_string_opt raw with
      | Some i -> Ast.Lit (Gql_data.Value.Int i)
      | None ->
        st.pos <- start;
        err st "bad number %S" raw)
  | Some c when is_word_start c ->
    let v = word st in
    (match peek st with
    | Some '.' ->
      advance st;
      let field = word st in
      if field <> "value" then err st "expected '.value' after variable '%s'" v
      else Ast.Var v
    | _ -> err st "expected '.value' after variable '%s'" v)
  | Some c -> err st "expected a value or variable but found '%c'" c
  | None -> err st "expected a value or variable but the line ended"

let parse_cmp st : Ast.cmp =
  skip_ws st;
  match peek st with
  | Some '=' ->
    advance st;
    Ast.Eq
  | Some '<' ->
    advance st;
    (match peek st with
    | Some '>' ->
      advance st;
      Ast.Ne
    | Some '=' ->
      advance st;
      Ast.Le
    | _ -> Ast.Lt)
  | Some '>' ->
    advance st;
    (match peek st with
    | Some '=' ->
      advance st;
      Ast.Ge
    | _ -> Ast.Gt)
  | Some c -> err st "expected a comparison operator but found '%c'" c
  | None -> err st "expected a comparison operator but the line ended"

let parse_cond st : Ast.cond =
  let lhs = parse_term st in
  let op = parse_cmp st in
  let rhs = parse_term st in
  { Ast.lhs; op; rhs }

let parse_where st : Ast.cond list =
  let rec go acc =
    let c = parse_cond st in
    if at_end st then List.rev (c :: acc)
    else (
      expect_keyword st "and";
      go (c :: acc))
  in
  go []

(* ------------------------------------------------------------------ *)
(* RETURN                                                              *)

let parse_ret_item st : Ast.ret =
  let v = word st in
  match peek st with
  | Some '.' ->
    advance st;
    let field = word st in
    if field <> "value" then err st "expected '.value' after variable '%s'" v
    else Ast.Value v
  | _ -> Ast.Node v

let parse_returns st : Ast.ret list =
  let rec go acc =
    let r = parse_ret_item st in
    skip_ws st;
    match peek st with
    | Some ',' ->
      advance st;
      go (r :: acc)
    | _ -> List.rev (r :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let parse_result (src : string) : (Ast.query, string) result =
  try
    let clauses = ref [] in
    let returns = ref None in
    let lines = String.split_on_char '\n' src in
    List.iteri
      (fun i raw ->
        let trimmed = String.trim raw in
        if trimmed = "" || trimmed.[0] = '#' then ()
        else
          let st = { line = raw; lineno = i + 1; pos = 0 } in
          if !returns <> None then err st "RETURN must be the last clause"
          else (
            skip_ws st;
            let col = st.pos in
            match keyword st with
            | "match" ->
              clauses := Ast.Match (parse_chain st) :: !clauses;
              end_line st
            | "where" ->
              clauses := Ast.Where (parse_where st) :: !clauses
            | "not" ->
              expect_keyword st "exists";
              eat st '{';
              let ch = parse_chain st in
              eat st '}';
              clauses := Ast.Not_exists ch :: !clauses;
              end_line st
            | "return" ->
              returns := Some (parse_returns st);
              end_line st
            | w ->
              st.pos <- col;
              err st "unknown clause '%s'" w))
      lines;
    match !returns with
    | None -> Error "missing RETURN clause"
    | Some returns -> (
      match List.rev !clauses with
      | Ast.Match _ :: _ as clauses -> Ok { Ast.clauses; returns }
      | _ -> Error "a query must begin with a MATCH clause")
  with Error msg -> Error msg

let parse (src : string) : Ast.query =
  match parse_result src with Ok q -> q | Error msg -> raise (Error msg)
