(** Evaluation routes and row rendering for [MATCH] queries.

    Three routes over one compiled form: the direct homomorphism
    matcher (with or without an index provider) and the algebra
    executor under either planner strategy.  All routes produce the
    same *bag* of embeddings; rows are rendered and then sorted
    lexicographically, so every route — and the served path, cold or
    cached — answers byte-identical text.  The [match-vs-algebra] fuzz
    oracle holds this door shut. *)

open Gql_data

(** Embeddings via {!Gql_graph.Homo.iter_embeddings}, residuals applied
    after the fact (the matcher knows nothing about WHERE). *)
let bindings ?(index : Index.t option) ?domains (data : Graph.t)
    (c : Compile.t) : int array list =
  let provider = Option.map (fun idx -> Compile.provider idx c) index in
  let acc = ref [] in
  Gql_graph.Homo.iter_embeddings ?provider ?domains c.Compile.pattern
    (Graph.digraph data) ~emit:(fun emb -> acc := Array.copy emb :: !acc);
  List.filter
    (fun emb ->
      List.for_all
        (fun r -> r.Gql_algebra.Planner.r_pred data emb)
        c.Compile.residuals)
    (List.rev !acc)

(** Embeddings via the algebra: plan with {!Gql_algebra.Planner.build}
    (residuals become Filter operators), run with
    {!Gql_algebra.Exec.run}. *)
let bindings_algebra ?strategy ?(index : Index.t option) ?domains
    (data : Graph.t) (c : Compile.t) : int array list =
  let job = Compile.job ?index c in
  let plan = Gql_algebra.Planner.build ?strategy data job in
  Gql_algebra.Exec.run ?provider:job.Gql_algebra.Planner.provider ?domains
    data c.Compile.pattern plan

let cell (data : Graph.t) ((r, i) : Ast.ret * int) (emb : int array) : string =
  match r with
  | Ast.Node _ -> (
    match Graph.kind data emb.(i) with
    | Graph.Complex l -> l
    | Graph.Atom v -> Value.to_string v)
  | Ast.Value _ -> Value.to_string (Graph.node_value data emb.(i))

let header (c : Compile.t) : string =
  String.concat "\t" (List.map (fun (r, _) -> Pp.ret r) c.Compile.ret_cols)

(** Projected rows in canonical order: rendered, then sorted as strings
    (duplicates kept — bag semantics). *)
let rows (data : Graph.t) (c : Compile.t) (embs : int array list) :
    string list =
  List.sort String.compare
    (List.map
       (fun emb ->
         String.concat "\t"
           (List.map (fun col -> cell data col emb) c.Compile.ret_cols))
       embs)

(** The canonical result text: header line, then sorted rows, newline
    terminated. *)
let body (data : Graph.t) (c : Compile.t) (embs : int array list) : string =
  String.concat "\n" (header c :: rows data c embs) ^ "\n"

(** A planned MATCH query: compiled form + physical plan + provider,
    ready to execute against the snapshot it was planned for.  This is
    what the server's plan cache stores — planning (estimate scans, DP
    enumeration) runs once per (query hash, snapshot version). *)
type prepared = {
  pr_compiled : Compile.t;
  pr_plan : Gql_algebra.Plan.t;
  pr_provider : (Graph.node_kind, Graph.edge) Gql_graph.Homo.provider option;
}

(** Compile and plan, cost-based by default. *)
let prepare ?(strategy = `Cost) ?(index : Index.t option) (data : Graph.t)
    (q : Ast.query) : prepared =
  let c = Compile.compile q in
  let job = Compile.job ?index c in
  {
    pr_compiled = c;
    pr_plan = Gql_algebra.Planner.build ~strategy data job;
    pr_provider = job.Gql_algebra.Planner.provider;
  }

(** Execute a prepared query; returns the canonical body and row count.
    [data] must be the snapshot [prepare] planned against. *)
let run_prepared ?domains (data : Graph.t) (p : prepared) : string * int =
  let embs =
    Gql_algebra.Exec.run ?provider:p.pr_provider ?domains data
      p.pr_compiled.Compile.pattern p.pr_plan
  in
  (body data p.pr_compiled embs, List.length embs)

(** The served entry point: compile, plan (cost-based — the same route
    `gql serve` uses), run through the algebra, render.  Returns the
    body and the row count. *)
let run ?(index : Index.t option) ?domains (data : Graph.t) (q : Ast.query) :
    string * int =
  run_prepared ?domains data (prepare ?index data q)

(** The plan text for a MATCH query — EXPLAIN, cost-annotated ([`Cost]
    by default). *)
let explain ?(strategy = `Cost) ?(index : Index.t option) (data : Graph.t)
    (q : Ast.query) : string =
  Gql_algebra.Plan.to_string (prepare ~strategy ?index data q).pr_plan
