(** Clause-internal shrink candidates for the fuzzer.

    The line-dropping shrinker in {!Gql_fuzz.Shrink} already removes
    whole clauses; this module proposes the next granularity down for a
    still-failing [MATCH] repro: drop the last hop of a chain, drop one
    [WHERE] conjunct, drop one [RETURN] column (keeping at least one).
    Candidates are printed back through {!Pp} and filtered to those
    that still compile, so the shrinker never wastes oracle runs on
    queries that fail for a new, boring reason (e.g. an orphaned
    variable). *)

let replace_nth l n x = List.mapi (fun i y -> if i = n then x else y) l
let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let ast_candidates (q : Ast.query) : Ast.query list =
  let out = ref [] in
  let push q' = out := q' :: !out in
  List.iteri
    (fun i cl ->
      match cl with
      | Ast.Match ch when ch.Ast.hops <> [] ->
        let hops' = drop_nth ch.Ast.hops (List.length ch.Ast.hops - 1) in
        push
          {
            q with
            Ast.clauses =
              replace_nth q.Ast.clauses i
                (Ast.Match { ch with Ast.hops = hops' });
          }
      | Ast.Where conds when List.length conds > 1 ->
        List.iteri
          (fun j _ ->
            push
              {
                q with
                Ast.clauses =
                  replace_nth q.Ast.clauses i (Ast.Where (drop_nth conds j));
              })
          conds
      | Ast.Match _ | Ast.Where _ | Ast.Not_exists _ -> ())
    q.Ast.clauses;
  if List.length q.Ast.returns > 1 then
    List.iteri
      (fun j _ -> push { q with Ast.returns = drop_nth q.Ast.returns j })
      q.Ast.returns;
  List.rev !out

(** Shrink candidates for a [MATCH] source text, largest reduction
    first; empty if the source does not parse. *)
let candidates (src : string) : string list =
  match Parse.parse_result src with
  | Error _ -> []
  | Ok q ->
    List.filter_map
      (fun q' ->
        match Compile.compile q' with
        | _ -> Some (Pp.query q')
        | exception Compile.Error _ -> None)
      (ast_candidates q)
