(** Lowering: {!Ast.query} -> homomorphism pattern + residual filters.

    The compiled form is exactly what the algebra planner consumes
    ({!Gql_algebra.Planner.job}), so a textual [MATCH] query rides the
    same interned-symbol / {!Gql_graph.Iset} / parallel data path as the
    two visual languages:

    - node patterns become [p_nodes] predicates (label conjunction over
      all occurrences of the variable; anonymous nodes are fresh);
    - [-[:name]->] becomes a {!Gql_graph.Homo.Direct} name test,
      [-[:a|b*]->] a {!Gql_graph.Homo.Path} over the compiled
      {!Gql_lang.Label_re} expression, and [<-[..]-] simply swaps the
      endpoints;
    - [NOT EXISTS] between two already-bound bare variables over a
      single-arc spec lowers to a {!Gql_graph.Homo.Negated} constraint
      (checked in-search, GraphLog's crossed-out edge); any richer
      sub-pattern becomes a residual that re-runs {!Gql_graph.Homo.exists}
      with the shared variables pre-bound;
    - [WHERE] conditions become residual predicates over
      {!Gql_data.Graph.node_value} using the same value comparison as
      the visual languages' condition boxes.

    Unknown variables in [WHERE]/[RETURN], and uses of edge variables
    where a node is required, are compile-time errors ({!Error}). *)

open Gql_data
module Homo = Gql_graph.Homo

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Per-edge symbolic form, kept alongside the opaque Homo constraint so
   the provider can build exact index navigation for each p_edges slot. *)
type cspec =
  | Cany
  | Clabel of string
  | Cpath of Graph.edge Gql_graph.Regpath.t

type cedge = { c_spec : cspec; c_negated : bool }

type t = {
  pattern : (Graph.node_kind, Graph.edge) Homo.pattern;
  edges : cedge list;  (** aligned with [pattern.p_edges] *)
  residuals : Gql_algebra.Planner.residual list;
  node_labels : string list array;  (** per pattern node, possibly empty *)
  ret_cols : (Ast.ret * int) list;  (** projection, with resolved indexes *)
}

let compile_path (src : string) : Graph.edge Gql_graph.Regpath.t =
  match Gql_lang.Label_re.parse src with
  | re ->
    (* MATCH paths traverse any edge kind by name; classify the leaves
       so the frozen-snapshot engine runs on the all-edges symbol plane *)
    Gql_graph.Regpath.compile_classified ~plane_hint:Index.plane_name
      ~classify:(fun sym ->
        if sym = "*" then Gql_graph.Regpath.Lany else Gql_graph.Regpath.Lname sym)
      (fun sym (e : Graph.edge) ->
        Gql_lang.Label_re.symbol_matches sym e.Graph.name)
      re
  | exception Gql_lang.Label_re.Error msg -> fail "bad path expression: %s" msg

(* Mutable builder for one pattern (outer query or NOT EXISTS body). *)
type builder = {
  vars : (string, int) Hashtbl.t;
  mutable n : int;
  mutable labels : (int * string) list;
  mutable edges_rev : ((int * (Graph.node_kind, Graph.edge) Homo.edge_constraint * int) * cedge) list;
}

let new_builder () =
  { vars = Hashtbl.create 8; n = 0; labels = []; edges_rev = [] }

let fresh b =
  let i = b.n in
  b.n <- b.n + 1;
  i

let node_index b (n : Ast.pnode) : int =
  let i =
    match n.Ast.n_var with
    | None -> fresh b
    | Some v -> (
      match Hashtbl.find_opt b.vars v with
      | Some i -> i
      | None ->
        let i = fresh b in
        Hashtbl.add b.vars v i;
        i)
  in
  (match n.Ast.n_label with
  | Some l -> b.labels <- (i, l) :: b.labels
  | None -> ());
  i

let lower_edge b (src : int) (e : Ast.pedge) (dst : int) =
  let src, dst = match e.Ast.e_dir with Ast.Out -> (src, dst) | Ast.In -> (dst, src) in
  let cons, spec =
    match e.Ast.e_spec with
    | Ast.Any -> (Homo.Direct (fun (_ : Graph.edge) -> true), Cany)
    | Ast.Label name ->
      (Homo.Direct (fun (de : Graph.edge) -> de.Graph.name = name), Clabel name)
    | Ast.Regex re_src ->
      let rp = compile_path re_src in
      (Homo.Path rp, Cpath rp)
  in
  b.edges_rev <-
    ((src, cons, dst), { c_spec = spec; c_negated = false }) :: b.edges_rev

let add_chain b (ch : Ast.chain) =
  let rec go prev = function
    | [] -> ()
    | (e, n) :: rest ->
      let i = node_index b n in
      lower_edge b prev e i;
      go i rest
  in
  go (node_index b ch.Ast.head) ch.Ast.hops

let finish b : (Graph.node_kind, Graph.edge) Homo.pattern * string list array =
  let node_labels = Array.make b.n [] in
  List.iter
    (fun (i, l) -> node_labels.(i) <- l :: node_labels.(i))
    b.labels;
  let p_nodes =
    Array.init b.n (fun i ->
        match node_labels.(i) with
        | [] -> fun (_ : Gql_graph.Digraph.node) (_ : Graph.node_kind) -> true
        | ls ->
          fun _ kind ->
            (match kind with
            | Graph.Complex l -> List.for_all (String.equal l) ls
            | Graph.Atom _ -> false))
  in
  let p_edges = List.rev_map fst b.edges_rev in
  ({ Homo.p_nodes; p_edges }, node_labels)

(* ------------------------------------------------------------------ *)

let edge_vars_of (q : Ast.query) : string list =
  List.concat_map
    (fun cl ->
      match cl with
      | Ast.Match ch | Ast.Not_exists ch ->
        List.filter_map (fun (e, _) -> e.Ast.e_var) ch.Ast.hops
      | Ast.Where _ -> [])
    q.Ast.clauses

let compile (q : Ast.query) : t =
  let edge_vars = edge_vars_of q in
  let b = new_builder () in
  (* Pass 1: the positive pattern — every MATCH chain. *)
  List.iter
    (fun cl -> match cl with Ast.Match ch -> add_chain b ch | _ -> ())
    q.Ast.clauses;
  List.iter
    (fun v ->
      if Hashtbl.mem b.vars v then
        fail "name '%s' is used for both a node and an edge" v)
    edge_vars;
  let resolve what v =
    match Hashtbl.find_opt b.vars v with
    | Some i -> i
    | None ->
      if List.mem v edge_vars then
        fail "edge variable '%s' has no value; only nodes can be used in %s" v
          what
      else fail "unknown variable '%s' in %s" v what
  in
  (* Pass 2: negations and conditions, in clause order. *)
  let residuals_rev = ref [] in
  let add_residual r = residuals_rev := r :: !residuals_rev in
  List.iter
    (fun cl ->
      match cl with
      | Ast.Match _ -> ()
      | Ast.Not_exists ch -> (
        let bound n =
          match n.Ast.n_var with
          | Some v when n.Ast.n_label = None -> Hashtbl.find_opt b.vars v
          | _ -> None
        in
        match (ch.Ast.head, ch.Ast.hops) with
        | hd, [ (e, tl) ] when bound hd <> None && bound tl <> None ->
          (* Single arc between two already-bound bare variables: an
             in-search Negated constraint, whatever the spec —
             single-arc specs negate the name test, path specs fall
             through to the residual below. *)
          let src = Option.get (bound hd) and dst = Option.get (bound tl) in
          let src, dst =
            match e.Ast.e_dir with Ast.Out -> (src, dst) | Ast.In -> (dst, src)
          in
          (match e.Ast.e_spec with
          | Ast.Any ->
            b.edges_rev <-
              ( (src, Homo.Negated (fun (_ : Graph.edge) -> true), dst),
                { c_spec = Cany; c_negated = true } )
              :: b.edges_rev
          | Ast.Label name ->
            b.edges_rev <-
              ( ( src,
                  Homo.Negated
                    (fun (de : Graph.edge) -> de.Graph.name = name),
                  dst ),
                { c_spec = Clabel name; c_negated = true } )
              :: b.edges_rev
          | Ast.Regex re_src ->
            (* No Negated-path constraint in the engine core: check the
               connection as a residual once both endpoints are bound. *)
            let rp = compile_path re_src in
            add_residual
              {
                (* residual names render MATCH-natively in EXPLAIN *)
                Gql_algebra.Planner.r_name =
                  "NOT EXISTS { " ^ Pp.chain ch ^ " }";
                r_pred =
                  (fun data emb ->
                    not
                      (Gql_graph.Regpath.connects rp (Graph.digraph data)
                         ~src:emb.(src) ~dst:emb.(dst)));
              })
        | _ ->
          (* General sub-pattern: compile it separately and re-run the
             matcher with the shared variables pre-bound. *)
          let ib = new_builder () in
          add_chain ib ch;
          let shared =
            Hashtbl.fold
              (fun v inner_i acc ->
                match Hashtbl.find_opt b.vars v with
                | Some outer_i -> (outer_i, inner_i) :: acc
                | None -> acc)
              ib.vars []
          in
          let inner_pat, _ = finish ib in
          add_residual
            {
              Gql_algebra.Planner.r_name =
                "NOT EXISTS { " ^ Pp.chain ch ^ " }";
              r_pred =
                (fun data emb ->
                  not
                    (Homo.exists
                       ~pre_bound:
                         (List.map (fun (o, i) -> (i, emb.(o))) shared)
                       inner_pat (Graph.digraph data)));
            })
      | Ast.Where conds ->
        List.iter
          (fun (c : Ast.cond) ->
            let tval = function
              | Ast.Var v ->
                let i = resolve "WHERE" v in
                fun data (emb : int array) -> Graph.node_value data emb.(i)
              | Ast.Lit v -> fun _ _ -> v
            in
            let lhs = tval c.Ast.lhs and rhs = tval c.Ast.rhs in
            let test =
              match c.Ast.op with
              | Ast.Eq -> fun n -> n = 0
              | Ast.Ne -> fun n -> n <> 0
              | Ast.Lt -> fun n -> n < 0
              | Ast.Le -> fun n -> n <= 0
              | Ast.Gt -> fun n -> n > 0
              | Ast.Ge -> fun n -> n >= 0
            in
            add_residual
              {
                Gql_algebra.Planner.r_name = "WHERE " ^ Pp.cond c;
                r_pred =
                  (fun data emb ->
                    test
                      (Value.compare_values (lhs data emb) (rhs data emb)));
              })
          conds)
    q.Ast.clauses;
  let ret_cols =
    List.map
      (fun r ->
        match r with
        | Ast.Node v | Ast.Value v -> (r, resolve "RETURN" v))
      q.Ast.returns
  in
  let pattern, node_labels = finish b in
  let edges = List.rev_map snd b.edges_rev in
  { pattern; edges; residuals = List.rev !residuals_rev; node_labels; ret_cols }

(* ------------------------------------------------------------------ *)

(** Exact index navigation for each compiled edge, plus label-posting
    candidate sets — the same provider shape the visual languages use. *)
let provider (idx : Index.t) (c : t) :
    (Graph.node_kind, Graph.edge) Homo.provider =
  let candidates v =
    match c.node_labels.(v) with
    | [] -> None
    | l :: _ -> Some (Index.complex_with_label idx l)
  in
  let navs =
    Array.of_list
      (List.map
         (fun e ->
           match e.c_spec with
           | Clabel name -> Some (Index.nav_name idx name)
           | Cpath rp when not e.c_negated -> Some (Index.nav_path idx rp)
           | Cpath _ | Cany -> None)
         c.edges)
  in
  Index.provider ~navs idx ~candidates

let job ?(index : Index.t option) (c : t) : Gql_algebra.Planner.job =
  {
    Gql_algebra.Planner.pattern = c.pattern;
    residuals = c.residuals;
    provider = Option.map (fun idx -> provider idx c) index;
  }
