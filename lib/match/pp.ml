(** Canonical printer for {!Ast} queries.

    [parse (query q) = q] and [query (parse (query q)) = query q] hold
    for every parseable source — the [match-vs-algebra] fuzz oracle
    asserts both on every generated case, and the shrinker relies on
    printing reduced ASTs back to source. *)

let lit (v : Gql_data.Value.t) : string =
  match v with
  | Gql_data.Value.String s -> "\"" ^ s ^ "\""
  | v -> Gql_data.Value.to_string v

let term = function
  | Ast.Var v -> v ^ ".value"
  | Ast.Lit v -> lit v

let cmp = function
  | Ast.Eq -> "="
  | Ast.Ne -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

let cond (c : Ast.cond) =
  Printf.sprintf "%s %s %s" (term c.Ast.lhs) (cmp c.Ast.op) (term c.Ast.rhs)

let pnode (n : Ast.pnode) =
  let v = Option.value n.Ast.n_var ~default:"" in
  let l = match n.Ast.n_label with Some l -> ":" ^ l | None -> "" in
  "(" ^ v ^ l ^ ")"

let pedge (e : Ast.pedge) =
  let v = Option.value e.Ast.e_var ~default:"" in
  let s =
    match e.Ast.e_spec with
    | Ast.Any -> ""
    | Ast.Label l -> ":" ^ l
    | Ast.Regex r -> ":" ^ r
  in
  match e.Ast.e_dir with
  | Ast.Out -> "-[" ^ v ^ s ^ "]->"
  | Ast.In -> "<-[" ^ v ^ s ^ "]-"

let chain (c : Ast.chain) =
  pnode c.Ast.head
  ^ String.concat ""
      (List.map (fun (e, n) -> pedge e ^ pnode n) c.Ast.hops)

let ret = function Ast.Node v -> v | Ast.Value v -> v ^ ".value"

let clause = function
  | Ast.Match c -> "MATCH " ^ chain c
  | Ast.Where cs -> "WHERE " ^ String.concat " AND " (List.map cond cs)
  | Ast.Not_exists c -> "NOT EXISTS { " ^ chain c ^ " }"

let query (q : Ast.query) =
  String.concat "\n"
    (List.map clause q.Ast.clauses
    @ [ "RETURN " ^ String.concat ", " (List.map ret q.Ast.returns) ])
  ^ "\n"
