(** Typed AST of the textual [MATCH] language — a GPML subset.

    The paper's two languages are *visual*: boxes and circles joined by
    edges, variables made obsolete by node sharing.  This module is the
    textual rendering of the same pattern core, in the shape industry
    standardised for property-graph matching (ISO SQL/PGQ's GPML, the
    Cypher family): a [MATCH] pattern produces a bag of binding rows.

    The concrete syntax is line-oriented — one clause per line — so
    fuzz repros minimize with the same line-dropping shrinker as the
    visual languages:

    {v
    MATCH (b:BOOK)-[]->(t:title)
    MATCH (b)-[:id]->(i)
    WHERE t.value <> "untitled" AND i.value < 100
    NOT EXISTS { (b)-[]->(p:price) }
    RETURN b, t.value
    v}

    Node patterns [(v:Label)] bind complex nodes by label; edge
    patterns are a single arc ([-[]->], [-[e:name]->], [<-[]-]) or a
    regular path over arc names ([-[:a|b*]->], reusing
    {!Gql_lang.Label_re}).  Semantics of a query are the bag of
    projected binding rows, rendered in a canonical sorted order so
    every evaluation route answers byte-identical text. *)

type dir =
  | Out  (** [-[..]->] : the arc leaves the left node *)
  | In  (** [<-[..]-] : the arc enters the left node *)

(** What an edge pattern's bracket says about the arc.  [Regex] keeps
    the concrete source text (validated at parse time): printing it back
    verbatim is what makes parse→pp→parse the identity. *)
type espec =
  | Any  (** [[]] — any single arc, whatever its name or kind *)
  | Label of string  (** [[:name]] — one arc named [name] *)
  | Regex of string  (** [[:a|b*]] — a {!Gql_lang.Label_re} path *)

type pnode = {
  n_var : string option;  (** binding variable, [None] for [()] *)
  n_label : string option;  (** complex-node label test *)
}

type pedge = {
  e_var : string option;
      (** decorative name; arcs are not bindable, so returning or
          comparing an edge variable is a compile error *)
  e_spec : espec;
  e_dir : dir;
}

(** A linear pattern: a node followed by zero or more (edge, node)
    hops.  Joins are by variable sharing, within and across chains —
    exactly the node sharing of the visual languages. *)
type chain = { head : pnode; hops : (pedge * pnode) list }

type term =
  | Var of string  (** [v.value] — the node's typed value *)
  | Lit of Gql_data.Value.t

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type cond = { lhs : term; op : cmp; rhs : term }

type clause =
  | Match of chain
  | Where of cond list  (** one line, [AND]-joined *)
  | Not_exists of chain  (** [NOT EXISTS { ... }] — safe negation *)

type ret =
  | Node of string  (** [v] — label of a complex node, value of an atom *)
  | Value of string  (** [v.value] — the node's typed value, printed *)

type query = { clauses : clause list; returns : ret list }

let chain_nodes (c : chain) : pnode list = c.head :: List.map snd c.hops

(** Variables bound by the [MATCH] clauses (declaration order, no
    duplicates) — the namespace [WHERE]/[RETURN] may refer to. *)
let match_vars (q : query) : string list =
  List.fold_left
    (fun acc cl ->
      match cl with
      | Match ch ->
        List.fold_left
          (fun acc n ->
            match n.n_var with
            | Some v when not (List.mem v acc) -> acc @ [ v ]
            | _ -> acc)
          acc (chain_nodes ch)
      | Where _ | Not_exists _ -> acc)
    [] q.clauses
